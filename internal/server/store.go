package server

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"mct/api"
)

// store is the daemon's durable state: one directory per job under
// <dir>/jobs/<id>/ holding
//
//	spec.json      the submitted JobSpec (wire form, immutable)
//	status.json    the last persisted JobStatus
//	artifact.json  the artifact document, written once on completion
//	machine.ckpt   Execute's machine checkpoint (while running)
//	partial.json   Execute's completed sweep prefix (while running)
//
// Every write is atomic (temp file + rename in the same directory), so a
// kill -9 can lose at most the work since the last chunk — never corrupt
// what a restarted server reads back.
type store struct {
	dir string
}

func openStore(dir string) (*store, error) {
	if err := os.MkdirAll(filepath.Join(dir, "jobs"), 0o755); err != nil {
		return nil, err
	}
	return &store{dir: dir}, nil
}

func (st *store) jobDir(id string) string { return filepath.Join(st.dir, "jobs", id) }

func (st *store) createJob(id string, spec api.JobSpec) error {
	if err := os.MkdirAll(st.jobDir(id), 0o755); err != nil {
		return err
	}
	return writeFileAtomic(filepath.Join(st.jobDir(id), "spec.json"), api.Encode(spec))
}

func (st *store) writeStatus(status api.JobStatus) error {
	return writeFileAtomic(filepath.Join(st.jobDir(status.ID), "status.json"), api.Encode(status))
}

func (st *store) writeArtifact(id string, artifact []byte) error {
	return writeFileAtomic(filepath.Join(st.jobDir(id), "artifact.json"), artifact)
}

func (st *store) readArtifact(id string) ([]byte, error) {
	return os.ReadFile(filepath.Join(st.jobDir(id), "artifact.json"))
}

// jobRecord is one job read back at startup.
type jobRecord struct {
	spec   api.JobSpec
	status api.JobStatus
}

// load reads every job directory back, in ID order (IDs are zero-padded
// sequence numbers, so lexicographic order is submission order). A job
// directory whose spec or status does not parse is an error: durable state
// must never be silently dropped.
func (st *store) load() ([]jobRecord, error) {
	entries, err := os.ReadDir(filepath.Join(st.dir, "jobs"))
	if err != nil {
		return nil, err
	}
	var ids []string
	for _, e := range entries {
		if e.IsDir() {
			ids = append(ids, e.Name())
		}
	}
	sort.Strings(ids)
	var out []jobRecord
	for _, id := range ids {
		specData, err := os.ReadFile(filepath.Join(st.jobDir(id), "spec.json"))
		if err != nil {
			return nil, fmt.Errorf("server: job %s: %w", id, err)
		}
		spec, err := api.DecodeJobSpec(specData)
		if err != nil {
			return nil, fmt.Errorf("server: job %s: %w", id, err)
		}
		statusData, err := os.ReadFile(filepath.Join(st.jobDir(id), "status.json"))
		if err != nil {
			return nil, fmt.Errorf("server: job %s: %w", id, err)
		}
		status, err := api.DecodeJobStatus(statusData)
		if err != nil {
			return nil, fmt.Errorf("server: job %s: %w", id, err)
		}
		out = append(out, jobRecord{spec: spec, status: status})
	}
	return out, nil
}

// nextID returns the first unused zero-padded job ID after the loaded
// records.
func nextID(records []jobRecord) int {
	max := 0
	for _, r := range records {
		var n int
		if _, err := fmt.Sscanf(strings.TrimPrefix(r.status.ID, "j"), "%d", &n); err == nil && n > max {
			max = n
		}
	}
	return max + 1
}

func jobID(n int) string { return fmt.Sprintf("j%06d", n) }

// writeFileAtomic writes data to path via a temp file and rename, so
// readers — including a restarted server — never observe a torn file.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()     //mctlint:ignore uncheckederr the write error is the one worth reporting
		os.Remove(name) //mctlint:ignore uncheckederr the write error is the one worth reporting
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name) //mctlint:ignore uncheckederr the close error is the one worth reporting
		return err
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name) //mctlint:ignore uncheckederr the rename error is the one worth reporting
		return err
	}
	return nil
}
