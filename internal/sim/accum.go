package sim

import "mct/internal/nvm"

// Accum aggregates the window metrics of one configuration across
// non-contiguous windows — exactly what the cyclic fine-grained sampling
// schedule of §5.2 produces (each sample configuration runs many short,
// interleaved units). IPC, lifetime and energy are recomputed from the
// summed raw components, so the aggregate equals what one contiguous run of
// the same windows would have reported.
type Accum struct {
	opt Options

	insts      uint64
	cpuCycles  float64
	seconds    float64
	wearByBank []float64

	memReads, memWrites                         uint64
	eager, cancelled, forced, slow, fast, qfull uint64
	writesByRatio                               map[float64]uint64
	hitWeighted                                 float64 // Σ hitRate·window accesses (approximated by reads+writes)
	windows                                     int

	// DRAM tier counters (all zero when the system has no DRAM tier).
	dramHits, dramMisses, dramWriteHits    uint64
	dramEagerAbsorbed, dramPromos, dramWbs uint64
}

// NewAccum returns an empty accumulator for systems described by opt.
func NewAccum(opt Options) *Accum {
	return &Accum{opt: opt, writesByRatio: make(map[float64]uint64)}
}

// Windows returns how many windows have been folded in.
func (a *Accum) Windows() int { return a.windows }

// Add folds one window's metrics into the aggregate.
func (a *Accum) Add(m Metrics) {
	a.windows++
	a.insts += m.Instructions
	a.cpuCycles += m.CPUCycles
	a.seconds += m.Seconds
	if a.wearByBank == nil {
		a.wearByBank = make([]float64, len(m.WearByBankDelta))
	}
	for b, w := range m.WearByBankDelta {
		a.wearByBank[b] += w
	}
	a.memReads += m.MemReads
	a.memWrites += m.MemWrites
	a.eager += m.EagerWrites
	a.cancelled += m.CancelledWrites
	a.forced += m.ForcedWrites
	a.slow += m.SlowWrites
	a.fast += m.FastWrites
	a.qfull += m.QueueFullStalls
	for r, n := range m.WritesByRatio {
		a.writesByRatio[r] += n
	}
	a.hitWeighted += m.LLCHitRate * float64(m.MemReads+m.MemWrites)
	a.dramHits += m.DRAMHits
	a.dramMisses += m.DRAMMisses
	a.dramWriteHits += m.DRAMWriteHits
	a.dramEagerAbsorbed += m.DRAMEagerAbsorbed
	a.dramPromos += m.DRAMPromotions
	a.dramWbs += m.DRAMWritebacks
}

// Metrics returns the aggregate as a single Metrics value.
func (a *Accum) Metrics() Metrics {
	var mt Metrics
	mt.Instructions = a.insts
	mt.CPUCycles = a.cpuCycles
	if a.cpuCycles > 0 {
		mt.IPC = float64(a.insts) / a.cpuCycles
	}
	mt.Seconds = a.seconds

	var maxWear float64
	for _, w := range a.wearByBank {
		if w > maxWear {
			maxWear = w
		}
	}
	budget := float64(a.opt.Params.LinesPerBank) * a.opt.Params.WearLevelEff
	if maxWear <= 0 || a.seconds <= 0 {
		mt.LifetimeYears = 1000
	} else {
		mt.LifetimeYears = a.seconds * budget / maxWear / nvm.SecondsPerYear
		if mt.LifetimeYears > 1000 {
			mt.LifetimeYears = 1000
		}
	}
	mt.WearByBankDelta = append([]float64(nil), a.wearByBank...)

	mt.MemReads = a.memReads
	mt.MemWrites = a.memWrites
	mt.EagerWrites = a.eager
	mt.CancelledWrites = a.cancelled
	mt.ForcedWrites = a.forced
	mt.SlowWrites = a.slow
	mt.FastWrites = a.fast
	mt.QueueFullStalls = a.qfull

	st := nvm.Stats{Reads: a.memReads, WritesByRatio: a.writesByRatio}
	if a.opt.Tiers.DRAMCache {
		mt.DRAMHits = a.dramHits
		mt.DRAMMisses = a.dramMisses
		mt.DRAMWriteHits = a.dramWriteHits
		mt.DRAMEagerAbsorbed = a.dramEagerAbsorbed
		mt.DRAMPromotions = a.dramPromos
		mt.DRAMWritebacks = a.dramWbs
		if tot := a.dramHits + a.dramMisses; tot > 0 {
			mt.DRAMHitRate = float64(a.dramHits) / float64(tot)
		}
		reads := a.dramHits
		writes := a.dramWriteHits + a.dramEagerAbsorbed + a.dramPromos
		mt.Energy = a.opt.Energy.ComputeTiered(a.insts, a.seconds, st, reads, writes)
	} else {
		mt.Energy = a.opt.Energy.Compute(a.insts, a.seconds, st)
	}
	mt.EnergyJ = mt.Energy.Total()
	mt.WritesByRatio = a.writesByRatio

	if tot := a.memReads + a.memWrites; tot > 0 {
		mt.LLCHitRate = a.hitWeighted / float64(tot)
	}
	return mt
}
