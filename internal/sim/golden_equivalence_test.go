// Golden equivalence gate for the tier-pipeline refactor: the default
// two-tier machine (LLC → NVM controller, no DRAM tier) must produce
// metrics byte-identical to the pre-refactor seed. The golden file was
// captured from the hard-coded llc/ctrl machine immediately before the
// hierarchy.Tier seam was introduced; any drift here means the refactor
// changed simulation results, not just structure.
//
// Regenerate (only when an intentional, documented stream break occurs):
//
//	MCT_UPDATE_GOLDEN=1 go test -run TestDefaultPipelineGolden ./internal/sim
package sim

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"mct/internal/config"
)

const goldenMetricsFile = "testdata/golden_default_pipeline.txt"

// goldenConfigs are the configurations pinned by the golden file: the
// default system, the static baseline, and a wear-quota + cancellation
// point that exercises forced writes and the drain paths.
func goldenConfigs() []config.Config {
	wq := config.StaticBaseline()
	wq.FastCancellation = true
	wq.SlowLatency = 4.0
	return []config.Config{config.Default(), config.StaticBaseline(), wq}
}

// formatMetrics renders every float with full round-trip precision
// (strconv 'g', -1): two Metrics render identically iff they are
// bit-identical in each pinned field.
func formatMetrics(m Metrics) string {
	g := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	var b strings.Builder
	fmt.Fprintf(&b, "insts=%d cycles=%s ipc=%s seconds=%s lifetime=%s energy=%s\n",
		m.Instructions, g(m.CPUCycles), g(m.IPC), g(m.Seconds), g(m.LifetimeYears), g(m.EnergyJ))
	fmt.Fprintf(&b, "  breakdown cpu_dyn=%s cpu_static=%s nvm_read=%s nvm_write=%s nvm_static=%s\n",
		g(m.Energy.CPUDynamic), g(m.Energy.CPUStatic), g(m.Energy.NVMRead), g(m.Energy.NVMWrite), g(m.Energy.NVMStatic))
	fmt.Fprintf(&b, "  traffic reads=%d writes=%d eager=%d cancelled=%d forced=%d slow=%d fast=%d qfull=%d\n",
		m.MemReads, m.MemWrites, m.EagerWrites, m.CancelledWrites, m.ForcedWrites, m.SlowWrites, m.FastWrites, m.QueueFullStalls)
	fmt.Fprintf(&b, "  rates llc_hit=%s row_hit=%s\n", g(m.LLCHitRate), g(m.RowHitRate))
	return b.String()
}

// renderGolden produces the golden text: warm-clone evaluations of the
// pinned configurations on lbm plus a windowed RunInstructions pass, the
// two execution styles the runtime drives.
func renderGolden(t *testing.T) string {
	t.Helper()
	var b strings.Builder

	p, err := Prepare("lbm", 0, 30_000, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i, cfg := range goldenConfigs() {
		m, err := p.Evaluate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&b, "eval[%d] %v\n%s", i, cfg, formatMetrics(m))
	}

	m, err := NewMachine(p.Spec, config.StaticBaseline(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	m.Warmup(DefaultWarmupAccesses)
	for w := 0; w < 3; w++ {
		fmt.Fprintf(&b, "window[%d]\n%s", w, formatMetrics(m.RunInstructions(400_000)))
	}
	return b.String()
}

func TestDefaultPipelineGolden(t *testing.T) {
	got := renderGolden(t)
	if os.Getenv("MCT_UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(goldenMetricsFile), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenMetricsFile, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden updated: %s", goldenMetricsFile)
		return
	}
	want, err := os.ReadFile(goldenMetricsFile)
	if err != nil {
		t.Fatalf("golden file missing (capture it on the pre-refactor tree with MCT_UPDATE_GOLDEN=1): %v", err)
	}
	if got != string(want) {
		t.Errorf("default two-tier pipeline drifted from the pre-refactor golden\n--- want:\n%s--- got:\n%s", want, got)
	}
}
