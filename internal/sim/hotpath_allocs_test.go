// Dynamic cross-check of the static allochot audit: the inner loop's
// measured allocation rate must agree with what the worklist says — the
// only allocation sites reachable from the Machine.step hotpath root are
// the explicitly suppressed amortized NVM queue appends, so the warmed-up
// steady state allocates (almost) nothing per access.
package sim

import (
	"os"
	"path/filepath"
	"testing"

	"mct/internal/analysis"
	"mct/internal/config"
	"mct/internal/trace"
)

func BenchmarkMachineStep(b *testing.B) {
	spec, err := trace.ByName("lbm")
	if err != nil {
		b.Fatal(err)
	}
	m, err := NewMachine(spec, config.Default(), DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	m.RunAccesses(10000) // warm the caches and queue capacities
	b.ReportAllocs()
	b.ResetTimer()
	m.RunAccesses(b.N)
}

// BenchmarkBatchedStepLoop measures the pure streaming inner loop — Fill a
// reusable batch from the generator, StepBatch it through the machine —
// with no window accounting. This is the loop long streaming runs spend
// their lives in; TestBatchedStepLoopZeroAllocs pins it at exactly 0
// allocs/op, and `make bench-smoke` reports its per-access cost.
func BenchmarkBatchedStepLoop(b *testing.B) {
	spec, err := trace.ByName("lbm")
	if err != nil {
		b.Fatal(err)
	}
	m, err := NewMachine(spec, config.Default(), DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	m.RunAccesses(100_000) // steady state: caches warm, queue capacities amortized
	buf := m.batchBuf()
	b.ReportAllocs()
	b.ResetTimer()
	for done := 0; done < b.N; {
		k := len(buf)
		if rem := b.N - done; k > rem {
			k = rem
		}
		m.gen.Fill(buf[:k])
		m.StepBatch(buf[:k])
		done += k
	}
}

// TestBatchedStepLoopZeroAllocs: the steady-state batched step loop must
// allocate nothing at all — not amortized-little, zero. The reusable batch
// buffer is filled in place and every queue has reached its amortized
// capacity, so any allocation here is a regression in the streaming hot
// path (the per-access cost that multi-billion-access runs multiply).
func TestBatchedStepLoopZeroAllocs(t *testing.T) {
	spec, err := trace.ByName("lbm")
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(spec, config.Default(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	m.RunAccesses(100_000)
	buf := m.batchBuf()
	avg := testing.AllocsPerRun(10, func() {
		m.gen.Fill(buf)
		m.StepBatch(buf)
	})
	if avg != 0 {
		t.Errorf("steady-state batched step loop allocates %.2f objects per %d-access batch, want exactly 0", avg, len(buf))
	}
}

// BenchmarkTieredBatchedStepLoop is the hybrid-pipeline twin of
// BenchmarkBatchedStepLoop: the same streaming inner loop with the DRAM
// cache tier interposed, so `make bench-smoke` reports the tier's
// per-access cost next to the stock pipeline's.
func BenchmarkTieredBatchedStepLoop(b *testing.B) {
	spec, err := trace.ByName("lbm")
	if err != nil {
		b.Fatal(err)
	}
	opt := DefaultOptions()
	opt.Tiers = config.TierConfig{DRAMCache: true, DRAMPromoteThreshold: 1}
	m, err := NewMachine(spec, config.Default(), opt)
	if err != nil {
		b.Fatal(err)
	}
	m.RunAccesses(100_000)
	buf := m.batchBuf()
	b.ReportAllocs()
	b.ResetTimer()
	for done := 0; done < b.N; {
		k := len(buf)
		if rem := b.N - done; k > rem {
			k = rem
		}
		m.gen.Fill(buf[:k])
		m.StepBatch(buf[:k])
		done += k
	}
}

// TestTieredBatchedStepLoopZeroAllocs pins the same exactly-0 gate on the
// hybrid DRAM–NVM pipeline: the tier seam is interface dispatch (no
// boxing), and every dram.Cache method is allocation-free by construction
// (flat SoA lanes, no maps), so inserting the tier must not cost a single
// object on the streaming hot path.
func TestTieredBatchedStepLoopZeroAllocs(t *testing.T) {
	spec, err := trace.ByName("lbm")
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	opt.Tiers = config.TierConfig{DRAMCache: true, DRAMPromoteThreshold: 1}
	m, err := NewMachine(spec, config.Default(), opt)
	if err != nil {
		t.Fatal(err)
	}
	m.RunAccesses(100_000)
	if st := m.dramStats(); st.Hits+st.Misses == 0 {
		t.Fatal("tiered warmup drove no DRAM traffic; the gate exercises nothing")
	}
	buf := m.batchBuf()
	avg := testing.AllocsPerRun(10, func() {
		m.gen.Fill(buf)
		m.StepBatch(buf)
	})
	if avg != 0 {
		t.Errorf("tiered steady-state batched step loop allocates %.2f objects per %d-access batch, want exactly 0", avg, len(buf))
	}
}

// TestStepSteadyStateAllocs is the measurement half of the cross-check: a
// warmed machine runs thousands of accesses with a per-access allocation
// budget far below one. The bound is loose (windowMetrics itself allocates
// its result maps once per RunAccesses call) but fails loudly if an
// unsuppressed per-access allocation sneaks into the hot path.
func TestStepSteadyStateAllocs(t *testing.T) {
	spec, err := trace.ByName("lbm")
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(spec, config.Default(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	m.RunAccesses(20000) // warm: queue capacities reach steady state

	const accesses = 2000
	avg := testing.AllocsPerRun(5, func() {
		m.RunAccesses(accesses)
	})
	// windowMetrics allocates a bounded handful of objects per call; the
	// budget of 0.05 allocs/access (100 per window) leaves room for that
	// plus rare amortized queue growth, and nothing else.
	if perAccess := avg / accesses; perAccess > 0.05 {
		t.Errorf("hot path allocates %.4f objects per access (%.0f per %d-access window); "+
			"the allochot worklist promises only amortized queue appends", perAccess, avg, accesses)
	}
}

// TestStepWorklistMatchesSuppressions is the static half: every allocation
// site the audit finds under the streaming hot-path roots — Machine.step,
// the batched Machine.StepBatch, and the generator's Next/Fill — must be
// one of the reasoned //mctlint:ignore sites in internal/nvm (the amortized
// queue appends). A new entry here means either hoist the allocation or
// argue its amortization in a suppression — and extend this list.
func TestStepWorklistMatchesSuppressions(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the module tree")
	}
	loader, err := analysis.NewLoader(moduleRootDir(t))
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.Load(loader.ModulePath() + "/internal/sim")
	if err != nil {
		t.Fatal(err)
	}
	prog := analysis.NewProgram(loader, []*analysis.Package{pkg})

	roots := map[string]struct {
		allowed   map[string]bool
		wantSites bool // the root must reach at least one (suppressed) site
	}{
		"(*" + loader.ModulePath() + "/internal/sim.Machine).step": {
			allowed: map[string]bool{
				// The three amortized NVM queue appends, each carrying a
				// reasoned ignore directive at the site.
				"(*" + loader.ModulePath() + "/internal/nvm.Controller).Read":       true,
				"(*" + loader.ModulePath() + "/internal/nvm.Controller).Write":      true,
				"(*" + loader.ModulePath() + "/internal/nvm.Controller).EagerWrite": true,
			},
			wantSites: true,
		},
		// The batched loop reaches exactly what step reaches: batching
		// amortizes call overhead, it must not introduce allocations.
		"(*" + loader.ModulePath() + "/internal/sim.Machine).StepBatch": {
			allowed: map[string]bool{
				"(*" + loader.ModulePath() + "/internal/nvm.Controller).Read":       true,
				"(*" + loader.ModulePath() + "/internal/nvm.Controller).Write":      true,
				"(*" + loader.ModulePath() + "/internal/nvm.Controller).EagerWrite": true,
			},
			wantSites: true,
		},
		// The generator side of the streaming loop is allocation-free
		// outright: Fill writes into the caller-owned batch.
		"(*" + loader.ModulePath() + "/internal/trace.Generator).Fill": {allowed: map[string]bool{}},
		"(*" + loader.ModulePath() + "/internal/trace.Generator).Next": {allowed: map[string]bool{}},
		// The DRAM tier's hot-path methods allocate nothing themselves;
		// their forwarding edges (miss, eviction, eager pass-through) reach
		// only the suppressed NVM queue appends below.
		"(*" + loader.ModulePath() + "/internal/dram.Cache).Read": {
			allowed: map[string]bool{
				"(*" + loader.ModulePath() + "/internal/nvm.Controller).Read":       true,
				"(*" + loader.ModulePath() + "/internal/nvm.Controller).Write":      true,
				"(*" + loader.ModulePath() + "/internal/nvm.Controller).EagerWrite": true,
			},
			wantSites: true,
		},
		"(*" + loader.ModulePath() + "/internal/dram.Cache).Write": {
			allowed: map[string]bool{
				"(*" + loader.ModulePath() + "/internal/nvm.Controller).Read":       true,
				"(*" + loader.ModulePath() + "/internal/nvm.Controller).Write":      true,
				"(*" + loader.ModulePath() + "/internal/nvm.Controller).EagerWrite": true,
			},
			wantSites: true,
		},
		"(*" + loader.ModulePath() + "/internal/dram.Cache).EagerWrite": {
			allowed: map[string]bool{
				"(*" + loader.ModulePath() + "/internal/nvm.Controller).Read":       true,
				"(*" + loader.ModulePath() + "/internal/nvm.Controller).Write":      true,
				"(*" + loader.ModulePath() + "/internal/nvm.Controller).EagerWrite": true,
			},
			wantSites: true,
		},
	}
	worklist := analysis.AllochotWorklist(prog)
	for root, want := range roots {
		if prog.LookupFunc(root) == nil {
			t.Errorf("hot-path root %s not found in the call graph; the audit root or the cross-check is broken", root)
			continue
		}
		seen := 0
		for _, site := range worklist {
			if !underRoot(prog, root, site.Func) {
				continue
			}
			seen++
			if !want.allowed[site.Func] {
				t.Errorf("unexpected allocation site %s under hot-path root %s (%s at %s:%d); hoist it or add a reasoned suppression",
					site.Func, root, site.Kind, site.Pos.Filename, site.Pos.Line)
			}
		}
		if want.wantSites && seen == 0 {
			t.Errorf("worklist found no sites under %s; the audit root or the cross-check is broken", root)
		}
	}
}

// underRoot reports whether fn is reachable from the named root in the
// program's call graph.
func underRoot(prog *analysis.Program, root, fn string) bool {
	r := prog.LookupFunc(root)
	target := prog.LookupFunc(fn)
	if r == nil || target == nil {
		return false
	}
	_, ok := prog.CallGraph().Reachable([]*analysis.FuncInfo{r})[target]
	return ok
}

// moduleRootDir resolves the go.mod directory (two levels above this
// package).
func moduleRootDir(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root := filepath.Clean(filepath.Join(wd, "..", ".."))
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("module root not found at %s: %v", root, err)
	}
	return root
}
