package sim

import (
	"fmt"

	"mct/internal/cache"
	"mct/internal/config"
	"mct/internal/dram"
	"mct/internal/hierarchy"
	"mct/internal/nvm"
	"mct/internal/rng"
	"mct/internal/stats"
	"mct/internal/trace"
)

// MultiOptions configures the 4-core system of §6.2.5: independent L1/L2
// per core (abstracted into the per-core trace), a shared 8 MB LLC and an
// 8 GB, 32-bank resistive main memory.
type MultiOptions struct {
	Options
	Cores int
}

// DefaultMultiOptions returns the paper's multi-core system.
func DefaultMultiOptions() MultiOptions {
	o := DefaultOptions()
	o.CacheBytes = 8 << 20
	o.Params.Banks = 32
	o.Params.LinesPerBank = 8 << 30 / 32 / 64
	// Shared-memory write-power budget scales with the larger module.
	o.Params.MaxConcurrentWrites = 8
	return MultiOptions{Options: o, Cores: 4}
}

// Validate checks option sanity.
func (o MultiOptions) Validate() error {
	if o.Cores <= 0 {
		return fmt.Errorf("sim: non-positive core count %d", o.Cores)
	}
	return o.Options.Validate()
}

// coreAddrStride separates per-core address spaces (16 GB apart).
const coreAddrStride = 1 << 34

// MultiMachine simulates a multi-programmed workload: one benchmark per
// core, private core clocks, shared LLC and shared NVM. Cores advance in
// near-lockstep (the least-advanced core steps next), so memory contention
// between programs is captured.
type MultiMachine struct {
	opt  MultiOptions
	gens []*trace.Generator
	llc  *cache.Cache
	// dram is the optional shared DRAM cache tier; nil on the stock
	// NVM-only hierarchy. mem is the topmost memory-side tier (see
	// Machine).
	dram *dram.Cache
	ctrl *nvm.Controller
	mem  hierarchy.Mem

	cpuCycles []float64
	insts     []uint64

	winStartCycles []float64
	winStartInsts  []uint64
	winStartStats  nvm.Stats
	winStartDRAM   dram.Stats

	// obsv is the optional observer (AttachObserver); nil means no
	// instrumentation and zero overhead.
	obsv *machineObs
}

// NewMultiMachine builds a multi-core machine running one spec per core
// under cfg.
func NewMultiMachine(specs []trace.Spec, cfg config.Config, opt MultiOptions) (*MultiMachine, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if len(specs) != opt.Cores {
		return nil, fmt.Errorf("sim: %d specs for %d cores", len(specs), opt.Cores)
	}
	llc, err := cache.New(opt.CacheBytes, opt.CacheWays)
	if err != nil {
		return nil, err
	}
	ctrl, err := nvm.New(cfg, opt.Params)
	if err != nil {
		return nil, err
	}
	m := &MultiMachine{
		opt:            opt,
		gens:           make([]*trace.Generator, opt.Cores),
		llc:            llc,
		ctrl:           ctrl,
		mem:            ctrl,
		cpuCycles:      make([]float64, opt.Cores),
		insts:          make([]uint64, opt.Cores),
		winStartCycles: make([]float64, opt.Cores),
		winStartInsts:  make([]uint64, opt.Cores),
	}
	if opt.Tiers.DRAMCache {
		d, err := dram.New(opt.dramParams(), ctrl)
		if err != nil {
			return nil, err
		}
		m.dram = d
		m.mem = d
	}
	for i, spec := range specs {
		m.gens[i] = trace.NewGeneratorAt(spec, rng.DeriveRand(opt.Seed, int64(i)), uint64(i)*coreAddrStride)
	}
	m.beginWindow()
	return m, nil
}

// Config returns the active configuration.
func (m *MultiMachine) Config() config.Config { return m.ctrl.Config() }

// SetConfig reconfigures the shared NVM controller in place.
func (m *MultiMachine) SetConfig(cfg config.Config) error { return m.ctrl.SetConfig(cfg) }

// Options returns the single-machine view of the options (used by metric
// aggregation).
func (m *MultiMachine) Options() Options { return m.opt.Options }

// Cores returns the core count.
func (m *MultiMachine) Cores() int { return m.opt.Cores }

// DRAM exposes the shared DRAM cache tier, nil on NVM-only machines.
func (m *MultiMachine) DRAM() *dram.Cache { return m.dram }

// dramStats returns the DRAM tier's counters, zero on NVM-only machines.
func (m *MultiMachine) dramStats() dram.Stats {
	if m.dram == nil {
		return dram.Stats{}
	}
	return m.dram.Stats()
}

func (m *MultiMachine) beginWindow() {
	copy(m.winStartCycles, m.cpuCycles)
	copy(m.winStartInsts, m.insts)
	m.winStartStats = m.ctrl.Stats()
	m.winStartDRAM = m.dramStats()
}

// stepCore advances the least-advanced core by one access. Hot-path root:
// the multi-program inner loop.
//
//mctlint:hotpath
func (m *MultiMachine) stepCore() {
	core := 0
	for i := 1; i < m.opt.Cores; i++ {
		if m.cpuCycles[i] < m.cpuCycles[core] {
			core = i
		}
	}
	o := &m.opt.Options
	a := m.gens[core].Next()
	m.cpuCycles[core] += float64(a.InstGap) * o.BaseCPI
	m.insts[core] += uint64(a.InstGap)

	res := m.llc.Access(a.Addr, a.Write)
	if res.Hit {
		m.cpuCycles[core] += o.LLCHitCycles
		return
	}
	now := uint64(m.cpuCycles[core] / o.CPUCyclesPerMemCycle)
	if res.Writeback {
		accepted := m.mem.Write(res.WritebackAddr, now)
		if accepted > now {
			m.cpuCycles[core] += float64(accepted-now) * o.CPUCyclesPerMemCycle
			now = accepted
		}
	}
	done := m.mem.Read(res.FillAddr, now)
	latCPU := float64(done-now) * o.CPUCyclesPerMemCycle
	if a.Write {
		m.cpuCycles[core] += latCPU * o.StoreStallFactor
	} else {
		m.cpuCycles[core] += latCPU * o.ReadStallFactor
	}

	cfg := m.ctrl.Config()
	if cfg.EagerWritebacks && m.mem.EagerSpace() {
		useless := m.llc.UselessPositions(cfg.EagerThreshold)
		if useless > 0 {
			if addr, ok := m.llc.NextEagerVictim(useless, o.EagerScanSets); ok {
				m.mem.EagerWrite(addr, uint64(m.cpuCycles[core]/o.CPUCyclesPerMemCycle))
			}
		}
	}
}

// MultiMetrics extends Metrics with per-core performance. Metrics.IPC holds
// the geometric mean of per-core IPCs (the paper's multi-program
// performance measure).
type MultiMetrics struct {
	Metrics
	PerCoreIPC []float64
}

// RunInstructions executes until the cores have committed at least n
// further instructions in total, returning window metrics. Cores advance in
// cycle-lockstep (the least-advanced core steps next), so each contributes
// in proportion to its speed. The window wall-clock is the slowest core's
// cycle delta.
func (m *MultiMachine) RunInstructions(n uint64) MultiMetrics {
	m.beginWindow()
	var start uint64
	for _, v := range m.winStartInsts {
		start += v
	}
	target := start + n
	for {
		var tot uint64
		for _, v := range m.insts {
			tot += v
		}
		if tot >= target {
			break
		}
		m.stepCore()
	}
	return m.windowMetrics()
}

func (m *MultiMachine) windowMetrics() MultiMetrics {
	o := &m.opt.Options
	s1 := m.ctrl.Stats()
	s0 := m.winStartStats
	d1 := m.dramStats()
	if m.obsv != nil {
		m.obsv.publish(m.llc.Stats(), s1, d1, true)
	}

	var mm MultiMetrics
	mm.PerCoreIPC = make([]float64, m.opt.Cores)
	var maxCycles float64
	var totInsts uint64
	var active []float64
	for i := range m.insts {
		dC := m.cpuCycles[i] - m.winStartCycles[i]
		dI := m.insts[i] - m.winStartInsts[i]
		if dC > 0 {
			mm.PerCoreIPC[i] = float64(dI) / dC
			// Cores that executed nothing in the window (e.g. still
			// recovering from a long stall that overshot the window) have
			// undefined performance here, not zero — excluding them keeps
			// the geomean meaningful for short windows.
			active = append(active, mm.PerCoreIPC[i])
		}
		if dC > maxCycles {
			maxCycles = dC
		}
		totInsts += dI
	}
	mm.Instructions = totInsts
	mm.CPUCycles = maxCycles
	mm.IPC = stats.GeoMean(active)
	seconds := maxCycles / o.CPUCyclesPerMemCycle / o.Params.MemCyclesPerSec
	mm.Seconds = seconds

	wearDelta := make([]float64, len(s1.WearByBank))
	var maxWear float64
	for b, w1 := range s1.WearByBank {
		d := w1 - s0.WearByBank[b]
		wearDelta[b] = d
		if d > maxWear {
			maxWear = d
		}
	}
	mm.WearByBankDelta = wearDelta
	budget := float64(o.Params.LinesPerBank) * o.Params.WearLevelEff
	if maxWear <= 0 || seconds <= 0 {
		mm.LifetimeYears = 1000
	} else {
		mm.LifetimeYears = seconds * budget / maxWear / nvm.SecondsPerYear
		if mm.LifetimeYears > 1000 {
			mm.LifetimeYears = 1000
		}
	}

	dst := diffStats(s0, s1)
	mm.MemReads = dst.Reads
	mm.MemWrites = dst.DemandWrites + dst.EagerWrites
	mm.EagerWrites = dst.EagerWrites
	mm.CancelledWrites = dst.CancelledWrites
	mm.ForcedWrites = dst.ForcedWrites
	mm.SlowWrites = dst.SlowWrites
	mm.FastWrites = dst.FastWrites
	mm.QueueFullStalls = dst.QueueFullStalls
	mm.WritesByRatio = dst.WritesByRatio

	// CPU static power scales with core count.
	em := o.Energy
	em.CPUStaticPower *= float64(m.opt.Cores)
	if m.dram != nil {
		dd := diffDRAM(m.winStartDRAM, d1)
		mm.DRAMHits = dd.Hits
		mm.DRAMMisses = dd.Misses
		mm.DRAMWriteHits = dd.WriteHits
		mm.DRAMEagerAbsorbed = dd.EagerAbsorbed
		mm.DRAMPromotions = dd.Promotions
		mm.DRAMWritebacks = dd.Writebacks
		mm.DRAMHitRate = dd.HitRate()
		mm.Energy = em.ComputeTiered(totInsts, seconds, dst, dramReads(dd), dramWrites(dd))
	} else {
		mm.Energy = em.Compute(totInsts, seconds, dst)
	}
	mm.EnergyJ = mm.Energy.Total()
	return mm
}
