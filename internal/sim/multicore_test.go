package sim

import (
	"testing"

	"mct/internal/config"
	"mct/internal/stats"
	"mct/internal/trace"
)

func mustMulti(t *testing.T, mix string, cfg config.Config) *MultiMachine {
	t.Helper()
	specs, err := trace.MixByName(mix)
	if err != nil {
		t.Fatal(err)
	}
	mm, err := NewMultiMachine(specs, cfg, DefaultMultiOptions())
	if err != nil {
		t.Fatal(err)
	}
	return mm
}

func TestMultiOptions(t *testing.T) {
	o := DefaultMultiOptions()
	if o.Cores != 4 || o.CacheBytes != 8<<20 || o.Params.Banks != 32 {
		t.Fatalf("multi options wrong: %+v", o)
	}
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
	o.Cores = 0
	if err := o.Validate(); err == nil {
		t.Fatal("zero cores must fail")
	}
}

func TestMultiMachineSpecCount(t *testing.T) {
	specs, _ := trace.MixByName("mix1")
	if _, err := NewMultiMachine(specs[:2], config.Default(), DefaultMultiOptions()); err == nil {
		t.Fatal("spec/core mismatch must fail")
	}
}

func TestMultiRunBasics(t *testing.T) {
	mm := mustMulti(t, "mix1", config.StaticBaseline())
	mm.Warmup(240_000)
	w := mm.RunInstructions(400_000)
	if len(w.PerCoreIPC) != 4 {
		t.Fatalf("per-core IPCs: %v", w.PerCoreIPC)
	}
	for i, ipc := range w.PerCoreIPC {
		if ipc <= 0 {
			t.Fatalf("core %d IPC = %v", i, ipc)
		}
	}
	if got := stats.GeoMean(w.PerCoreIPC); got != w.IPC {
		t.Fatalf("IPC %v != geomean %v", w.IPC, got)
	}
	if w.Instructions < 400_000 {
		t.Fatalf("total insts %d < target", w.Instructions)
	}
	if w.MemWrites == 0 || w.LifetimeYears >= 1000 {
		t.Fatalf("shared memory saw no writes: %+v", w.Metrics.Vector())
	}
}

func TestMultiDeterministic(t *testing.T) {
	a := mustMulti(t, "mix3", config.Default())
	b := mustMulti(t, "mix3", config.Default())
	wa := a.RunInstructions(200_000)
	wb := b.RunInstructions(200_000)
	if wa.IPC != wb.IPC || wa.EnergyJ != wb.EnergyJ {
		t.Fatal("multicore run nondeterministic")
	}
}

func TestMultiCoresShareMemoryPressure(t *testing.T) {
	// The same benchmark alone vs alongside heavy co-runners: shared
	// contention must reduce its IPC.
	specs, _ := trace.MixByName("mix1") // contains stream
	mo := DefaultMultiOptions()
	mm, err := NewMultiMachine(specs, config.Default(), mo)
	if err != nil {
		t.Fatal(err)
	}
	mm.Warmup(240_000)
	shared := mm.RunInstructions(800_000)

	solo, err := NewMachine(specs[0], config.Default(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	solo.Warmup(60_000)
	alone := solo.RunInstructions(200_000)
	if shared.PerCoreIPC[0] >= alone.IPC {
		t.Fatalf("co-running %s should cost IPC: %v shared vs %v alone",
			specs[0].Name, shared.PerCoreIPC[0], alone.IPC)
	}
}

func TestMultiSetConfig(t *testing.T) {
	mm := mustMulti(t, "mix2", config.Default())
	if err := mm.SetConfig(config.StaticBaseline()); err != nil {
		t.Fatal(err)
	}
	if mm.Config().SlowLatency != 3.0 {
		t.Fatal("config not applied")
	}
	if mm.Cores() != 4 {
		t.Fatal("core count accessor wrong")
	}
}
