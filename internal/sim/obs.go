// Observer wiring for machines. A machine optionally carries an
// obs.Registry plus the per-layer publishers that feed it; the hot path
// (step) is untouched — publishing happens from cumulative stats at window
// boundaries, in windowMetrics. Observers ride along the snapshot contract:
// Clone deep-copies the registry, Snapshot embeds its state in checkpoints,
// and RestoreMachine re-attaches it with baselines rebased to the restore
// point so nothing is double-counted.
package sim

import (
	"mct/internal/cache"
	"mct/internal/dram"
	"mct/internal/nvm"
	"mct/internal/obs"
)

// machineObs bundles a registry with the per-tier publishers feeding it,
// plus the sim-level window counter. The dram publisher is nil on
// NVM-only machines: their registries carry no dram.* instruments, so
// metric dumps of the stock hierarchy are unchanged by the tier seam.
type machineObs struct {
	reg *obs.Registry
	co  *cache.Obs
	no  *nvm.Obs
	do  *dram.Obs
	// windows counts metric-window computations — a cheap liveness signal
	// and a determinism tripwire (it must match across worker counts and
	// checkpoint resume).
	windows *obs.Counter
}

// newMachineObs registers the sim-side instruments on r and builds the
// layer publishers with zero baselines (callers rebase for warm state).
// withDRAM registers the dram.* family too.
func newMachineObs(r *obs.Registry, ways int, wearBudget float64, withDRAM bool) *machineObs {
	o := &machineObs{
		reg:     r,
		co:      cache.NewObs(r, ways),
		no:      nvm.NewObs(r, wearBudget),
		windows: r.Counter("sim.windows"),
	}
	if withDRAM {
		o.do = dram.NewObs(r)
	}
	return o
}

// clone rebinds the observer to a deep copy of its registry, preserving
// publisher baselines so the cloned machine continues accounting exactly
// where the parent left off.
func (o *machineObs) clone() *machineObs {
	r2 := o.reg.Clone()
	n := &machineObs{
		reg: r2,
		co:  o.co.CloneInto(r2),
		no:  o.no.CloneInto(r2),
		// Get-or-create finds the cloned instrument, value preserved.
		windows: r2.Counter("sim.windows"),
	}
	if o.do != nil {
		n.do = o.do.CloneInto(r2)
	}
	return n
}

// publish pushes the window's deltas into the registry. ds is ignored on
// machines without a DRAM tier (it is zero there anyway).
func (o *machineObs) publish(cs cache.Stats, st nvm.Stats, ds dram.Stats, countWindow bool) {
	o.co.Publish(cs)
	o.no.Publish(st)
	if o.do != nil {
		o.do.Publish(ds)
	}
	if countWindow {
		o.windows.Inc()
	}
}

// AttachObserver wires r into the machine: the per-tier metric families
// are registered on r and publishing starts at the next window boundary.
// Baselines are set to the machine's current stats, so only activity from
// the attach point on is accounted (this is what makes restore-then-attach
// free of double counting). A nil r detaches.
func (m *Machine) AttachObserver(r *obs.Registry) {
	if r == nil {
		m.obsv = nil
		return
	}
	o := newMachineObs(r, m.llc.Ways(), m.ctrl.WearBudget(), m.dram != nil)
	o.co.Rebase(m.llc.Stats())
	o.no.Rebase(m.ctrl.Stats())
	if o.do != nil {
		o.do.Rebase(m.dram.Stats())
	}
	m.obsv = o
}

// Observer returns the attached registry, or nil.
func (m *Machine) Observer() *obs.Registry {
	if m.obsv == nil {
		return nil
	}
	return m.obsv.reg
}

// SyncObserver publishes any stats accumulated since the last window
// boundary without ending the window (used before dumping or
// snapshotting). No-op when no observer is attached.
func (m *Machine) SyncObserver() {
	if m.obsv != nil {
		m.obsv.publish(m.llc.Stats(), m.ctrl.Stats(), m.dramStats(), false)
	}
}

// AttachObserver wires r into the multi-core machine (shared LLC,
// optional shared DRAM tier and controller; one metric family). Semantics
// match Machine.AttachObserver.
func (m *MultiMachine) AttachObserver(r *obs.Registry) {
	if r == nil {
		m.obsv = nil
		return
	}
	o := newMachineObs(r, m.llc.Ways(), m.ctrl.WearBudget(), m.dram != nil)
	o.co.Rebase(m.llc.Stats())
	o.no.Rebase(m.ctrl.Stats())
	if o.do != nil {
		o.do.Rebase(m.dram.Stats())
	}
	m.obsv = o
}

// Observer returns the attached registry, or nil.
func (m *MultiMachine) Observer() *obs.Registry {
	if m.obsv == nil {
		return nil
	}
	return m.obsv.reg
}

// SyncObserver publishes pending stats without ending the window.
func (m *MultiMachine) SyncObserver() {
	if m.obsv != nil {
		m.obsv.publish(m.llc.Stats(), m.ctrl.Stats(), m.dramStats(), false)
	}
}
