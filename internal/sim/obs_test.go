package sim

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"mct/internal/config"
	"mct/internal/obs"
	"mct/internal/trace"
)

// TestObserverPublishesFamilies: an attached registry carries the cache and
// nvm metric families plus the sim window counter after a run.
func TestObserverPublishesFamilies(t *testing.T) {
	m := mustMachine(t, "lbm", config.StaticBaseline())
	reg := obs.NewRegistry()
	m.AttachObserver(reg)
	if m.Observer() != reg {
		t.Fatal("Observer() did not return the attached registry")
	}

	runWindow(m, 40_000)
	dump := string(reg.DumpJSON())
	for _, want := range []string{
		`"cache.hits"`, `"cache.lru_hit_position"`, `"cache.writeback_rate"`,
		`"nvm.reads"`, `"nvm.bank_queue_depth"`, `"nvm.bank_wear"`,
		`"sim.windows": 1`,
	} {
		if !strings.Contains(dump, want) {
			t.Errorf("dump missing %s:\n%s", want, dump)
		}
	}

	m.AttachObserver(nil)
	if m.Observer() != nil {
		t.Error("nil attach must detach the observer")
	}
}

// TestObserverAttachRebasesBaselines: attaching to a warm machine accounts
// only activity from the attach point on — the pre-attach window must not
// be double-counted into the registry.
func TestObserverAttachRebasesBaselines(t *testing.T) {
	m := mustMachine(t, "gups", config.StaticBaseline())
	runWindow(m, 30_000) // pre-attach activity

	reg := obs.NewRegistry()
	m.AttachObserver(reg)
	m.SyncObserver()
	if v := reg.Counter("cache.hits").Value(); v != 0 {
		t.Fatalf("pre-attach hits leaked into the registry: %d", v)
	}
	if v := reg.Counter("nvm.reads").Value(); v != 0 {
		t.Fatalf("pre-attach reads leaked into the registry: %d", v)
	}

	runWindow(m, 30_000)
	if v := reg.Counter("nvm.reads").Value(); v == 0 {
		t.Fatal("post-attach activity not published")
	}
}

// TestObserverCloneIsolation: Clone deep-copies the observer; advancing the
// clone never changes the parent's dump, and the two dumps start equal.
func TestObserverCloneIsolation(t *testing.T) {
	m := mustMachine(t, "ocean", config.StaticBaseline())
	reg := obs.NewRegistry()
	m.AttachObserver(reg)
	runWindow(m, 30_000)

	cl := m.Clone()
	if cl.Observer() == nil || cl.Observer() == reg {
		t.Fatal("clone must carry its own deep-copied registry")
	}
	if !bytes.Equal(reg.DumpJSON(), cl.Observer().DumpJSON()) {
		t.Fatal("freshly cloned registry differs from parent")
	}

	before := reg.DumpJSON()
	runWindow(cl, 25_000)
	if !bytes.Equal(before, reg.DumpJSON()) {
		t.Fatal("advancing the clone perturbed the parent registry")
	}
	if bytes.Equal(before, cl.Observer().DumpJSON()) {
		t.Fatal("clone run published nothing to the clone registry")
	}
}

// TestObserverCheckpointRoundTrip: a run resumed from a checkpoint yields
// the byte-identical final dump of the uninterrupted run — the registry
// state rides through Snapshot/Restore and baselines rebase at restore, so
// nothing is lost or double-counted.
func TestObserverCheckpointRoundTrip(t *testing.T) {
	build := func() *Machine {
		m := mustMachine(t, "milc", config.StaticBaseline())
		m.AttachObserver(obs.NewRegistry())
		return m
	}

	a := build()
	runWindow(a, 30_000)
	path := filepath.Join(t.TempDir(), "m.ckpt")
	if err := SaveCheckpoint(path, a); err != nil {
		t.Fatal(err)
	}
	runWindow(a, 20_000)
	a.SyncObserver()

	b, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if b.Observer() == nil {
		t.Fatal("checkpoint dropped the observer registry")
	}
	runWindow(b, 20_000)
	b.SyncObserver()

	if da, db := a.Observer().DumpJSON(), b.Observer().DumpJSON(); !bytes.Equal(da, db) {
		t.Errorf("resumed dump differs from uninterrupted dump\nuninterrupted:\n%s\nresumed:\n%s", da, db)
	}
}

// TestObserverlessCheckpointStaysObserverless: machines without observers
// round-trip exactly as before (the Obs field is optional).
func TestObserverlessCheckpointStaysObserverless(t *testing.T) {
	m := mustMachine(t, "lbm", config.StaticBaseline())
	runWindow(m, 20_000)
	path := filepath.Join(t.TempDir(), "m.ckpt")
	if err := SaveCheckpoint(path, m); err != nil {
		t.Fatal(err)
	}
	b, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if b.Observer() != nil {
		t.Fatal("observer appeared out of nowhere on restore")
	}
}

// TestMultiMachineObserver: the 4-core machine publishes the shared
// LLC/controller families and clones its observer isolated, like the
// single-core machine.
func TestMultiMachineObserver(t *testing.T) {
	specs, err := trace.MixByName("mix1")
	if err != nil {
		t.Fatal(err)
	}
	mm, err := NewMultiMachine(specs, config.StaticBaseline(), DefaultMultiOptions())
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	mm.AttachObserver(reg)
	if mm.Observer() != reg {
		t.Fatal("Observer() did not return the attached registry")
	}
	mm.RunInstructions(200_000)
	dump := string(reg.DumpJSON())
	for _, want := range []string{`"cache.hits"`, `"nvm.reads"`, `"sim.windows": 1`} {
		if !strings.Contains(dump, want) {
			t.Errorf("multi dump missing %s:\n%s", want, dump)
		}
	}

	cl := mm.Clone()
	before := reg.DumpJSON()
	cl.RunInstructions(100_000)
	if !bytes.Equal(before, reg.DumpJSON()) {
		t.Fatal("advancing the multi clone perturbed the parent registry")
	}
}
