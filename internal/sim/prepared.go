package sim

import (
	"fmt"

	"mct/internal/config"
	"mct/internal/trace"
)

// DefaultWarmupAccesses fills a 2 MB LLC (32768 lines) with headroom before
// measurement starts; without warmup a short trace produces no evictions,
// hence no memory writes and meaningless lifetimes.
const DefaultWarmupAccesses = 60_000

// warmupConfig is the fixed configuration the shared warmup runs under.
// It must be one config for all evaluations (the warm machine is built
// once), and the all-fast default keeps warmup neutral: no techniques are
// active, so no configuration under test gets a head start.
func warmupConfig() config.Config { return config.Default() }

// Prepared is a benchmark workload prepared for repeated configuration
// evaluations: one machine (trace generator, LLC and NVM controller) has
// been warmed once under a fixed warmup configuration, and every evaluation
// clones the whole warm machine, switches it to the configuration under
// test, and replays only the identical measurement trace. This is what
// makes brute-force sweeps of thousands of configurations affordable and
// fair: the warmup — the one cost per-configuration parallelism cannot
// remove — is paid once per benchmark instead of once per configuration.
//
// Concurrency contract: after Prepare returns, a Prepared is immutable —
// Evaluate only reads the warm machine (via Clone, which never writes to
// its receiver) and the materialized trace, and builds all mutable
// simulation state per call. Any number of goroutines may therefore call
// Evaluate on one Prepared concurrently, and each evaluation's result
// depends only on its configuration — never on what other evaluations run
// beside it or in which order.
type Prepared struct {
	Spec trace.Spec
	opt  Options

	warmup int
	warm   *Machine
	tr     []trace.Access
}

// Prepare warms a machine with warmup accesses of the named benchmark
// (under warmupConfig) and materializes measure accesses for evaluation.
// warmup ≤ 0 uses DefaultWarmupAccesses.
func Prepare(benchmark string, warmup, measure int, opt Options) (*Prepared, error) {
	if measure <= 0 {
		return nil, fmt.Errorf("sim: non-positive measurement length %d", measure)
	}
	if warmup <= 0 {
		warmup = DefaultWarmupAccesses
	}
	spec, err := trace.ByName(benchmark)
	if err != nil {
		return nil, err
	}
	m, err := NewMachine(spec, warmupConfig(), opt)
	if err != nil {
		return nil, err
	}
	// Warm the whole machine: LLC contents, controller queues/row buffers,
	// and warmup-accrued wear (subtracted out by window accounting).
	for i := 0; i < warmup; i++ {
		m.step(m.gen.Next())
	}
	return &Prepared{
		Spec:   spec,
		opt:    opt,
		warmup: warmup,
		warm:   m,
		tr:     trace.Collect(m.gen, measure),
	}, nil
}

// Trace returns the measurement trace (shared; do not mutate).
func (p *Prepared) Trace() []trace.Access { return p.tr }

// Evaluate measures one configuration on the prepared workload by cloning
// the warm machine and replaying the measurement window. It is safe for
// concurrent use (see the Prepared concurrency contract) and returns the
// same Metrics for the same configuration no matter how many evaluations
// run in parallel.
func (p *Prepared) Evaluate(cfg config.Config) (Metrics, error) {
	m := p.warm.Clone()
	if err := m.SetConfig(cfg); err != nil {
		return Metrics{}, err
	}
	return p.measure(m)
}

// EvaluateCold measures one configuration the pre-clone way: build a fresh
// machine and replay the entire warmup before the measurement window. It
// must produce byte-identical Metrics to Evaluate — that equivalence is the
// correctness proof of the whole snapshot contract (enforced by tests) —
// and exists as the reference path for those tests and for the cold-vs-warm
// sweep benchmarks.
func (p *Prepared) EvaluateCold(cfg config.Config) (Metrics, error) {
	m, err := NewMachine(p.Spec, warmupConfig(), p.opt)
	if err != nil {
		return Metrics{}, err
	}
	for i := 0; i < p.warmup; i++ {
		m.step(m.gen.Next())
	}
	if err := m.SetConfig(cfg); err != nil {
		return Metrics{}, err
	}
	return p.measure(m)
}

// measure replays the measurement trace on m (positioned at the end of
// warmup) and returns the window metrics, with queued writes drained so
// their wear and energy are charged.
func (p *Prepared) measure(m *Machine) (Metrics, error) {
	m.beginWindow()
	for _, a := range p.tr {
		m.step(a)
	}
	final := m.ctrl.Drain(m.memNow())
	if f := float64(final) * p.opt.CPUCyclesPerMemCycle; f > m.cpuCycles {
		m.cpuCycles = f
	}
	return m.windowMetrics(), nil
}

// Warmup advances the machine by n trace accesses and then resets window
// accounting — run it once before measuring so the LLC and controller reach
// steady state. It returns the instructions executed.
func (m *Machine) Warmup(n int) uint64 {
	before := m.insts
	for i := 0; i < n; i++ {
		m.step(m.gen.Next())
	}
	m.beginWindow()
	return m.insts - before
}

// Warmup advances every core round-robin for a total of n accesses and
// resets window accounting.
func (m *MultiMachine) Warmup(n int) uint64 {
	var before uint64
	for _, v := range m.insts {
		before += v
	}
	for i := 0; i < n; i++ {
		m.stepCore()
	}
	m.beginWindow()
	var after uint64
	for _, v := range m.insts {
		after += v
	}
	return after - before
}
