package sim

import (
	"fmt"

	"mct/internal/cache"
	"mct/internal/config"
	"mct/internal/rng"
	"mct/internal/trace"
)

// DefaultWarmupAccesses fills a 2 MB LLC (32768 lines) with headroom before
// measurement starts; without warmup a short trace produces no evictions,
// hence no memory writes and meaningless lifetimes.
const DefaultWarmupAccesses = 60_000

// Prepared is a benchmark workload prepared for repeated configuration
// evaluations: the LLC has been warmed once (cache contents are independent
// of the NVM configuration), and every evaluation clones the warmed cache
// and replays the identical measurement trace. This is what makes
// brute-force sweeps of thousands of configurations affordable and fair.
//
// Concurrency contract: after Prepare returns, a Prepared is immutable —
// Evaluate only reads the warmed LLC (via Clone, which never writes to its
// receiver) and the materialized trace, and builds all mutable simulation
// state (machine, controller, cloned cache) per call. Any number of
// goroutines may therefore call Evaluate on one Prepared concurrently, and
// each evaluation's result depends only on its configuration — never on
// what other evaluations run beside it or in which order.
type Prepared struct {
	Spec trace.Spec
	opt  Options

	warmLLC *cache.Cache
	tr      []trace.Access
}

// Prepare warms the LLC with warmup accesses of the named benchmark and
// materializes measure accesses for evaluation. warmup ≤ 0 uses
// DefaultWarmupAccesses.
func Prepare(benchmark string, warmup, measure int, opt Options) (*Prepared, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if measure <= 0 {
		return nil, fmt.Errorf("sim: non-positive measurement length %d", measure)
	}
	if warmup <= 0 {
		warmup = DefaultWarmupAccesses
	}
	spec, err := trace.ByName(benchmark)
	if err != nil {
		return nil, err
	}
	llc, err := cache.New(opt.CacheBytes, opt.CacheWays)
	if err != nil {
		return nil, err
	}
	gen := trace.NewGenerator(spec, rng.New(opt.Seed))
	// Warm the cache; memory-side effects are discarded (the controller
	// starts fresh per evaluation — its state warms within ~1k accesses).
	for i := 0; i < warmup; i++ {
		a := gen.Next()
		llc.Access(a.Addr, a.Write)
	}
	return &Prepared{
		Spec:    spec,
		opt:     opt,
		warmLLC: llc,
		tr:      trace.Collect(gen, measure),
	}, nil
}

// Trace returns the measurement trace (shared; do not mutate).
func (p *Prepared) Trace() []trace.Access { return p.tr }

// Evaluate measures one configuration on the prepared workload. It is safe
// for concurrent use (see the Prepared concurrency contract) and returns
// the same Metrics for the same configuration no matter how many
// evaluations run in parallel.
func (p *Prepared) Evaluate(cfg config.Config) (Metrics, error) {
	m, err := NewMachine(p.Spec, cfg, p.opt)
	if err != nil {
		return Metrics{}, err
	}
	m.llc = p.warmLLC.Clone()
	m.beginWindow()
	for _, a := range p.tr {
		m.step(a)
	}
	final := m.ctrl.Drain(m.memNow())
	if f := float64(final) * p.opt.CPUCyclesPerMemCycle; f > m.cpuCycles {
		m.cpuCycles = f
	}
	return m.windowMetrics(), nil
}

// Warmup advances the machine by n trace accesses and then resets window
// accounting — run it once before measuring so the LLC and controller reach
// steady state. It returns the instructions executed.
func (m *Machine) Warmup(n int) uint64 {
	before := m.insts
	for i := 0; i < n; i++ {
		m.step(m.gen.Next())
	}
	m.beginWindow()
	return m.insts - before
}

// Warmup advances every core round-robin for a total of n accesses and
// resets window accounting.
func (m *MultiMachine) Warmup(n int) uint64 {
	var before uint64
	for _, v := range m.insts {
		before += v
	}
	for i := 0; i < n; i++ {
		m.stepCore()
	}
	m.beginWindow()
	var after uint64
	for _, v := range m.insts {
		after += v
	}
	return after - before
}
