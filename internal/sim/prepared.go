package sim

import (
	"fmt"

	"mct/internal/config"
	"mct/internal/trace"
)

// DefaultWarmupAccesses fills a 2 MB LLC (32768 lines) with headroom before
// measurement starts; without warmup a short trace produces no evictions,
// hence no memory writes and meaningless lifetimes.
const DefaultWarmupAccesses = 60_000

// warmupConfig is the fixed configuration the shared warmup runs under.
// It must be one config for all evaluations (the warm machine is built
// once), and the all-fast default keeps warmup neutral: no techniques are
// active, so no configuration under test gets a head start.
func warmupConfig() config.Config { return config.Default() }

// Prepared is a benchmark workload prepared for repeated configuration
// evaluations: one machine (trace generator, LLC and NVM controller) has
// been warmed once under a fixed warmup configuration, and every evaluation
// clones the whole warm machine, switches it to the configuration under
// test, and streams only the identical measurement window. This is what
// makes brute-force sweeps of thousands of configurations affordable and
// fair: the warmup — the one cost per-configuration parallelism cannot
// remove — is paid once per benchmark instead of once per configuration.
//
// The measurement trace is never materialized: the warm machine's generator
// sits exactly at the end of warmup, so each evaluation's clone regenerates
// the measurement stream from its own cloned generator — the identical
// stream for every configuration (the trace is a pure function of
// generator state), in O(StepBatchSize) memory instead of O(measure).
//
// Concurrency contract: after Prepare returns, a Prepared is immutable —
// Evaluate only reads the warm machine (via Clone, which never writes to
// its receiver and shares nothing mutable), and builds all mutable
// simulation state per call. Any number of goroutines may therefore call
// Evaluate on one Prepared concurrently, and each evaluation's result
// depends only on its configuration — never on what other evaluations run
// beside it or in which order.
type Prepared struct {
	Spec trace.Spec
	opt  Options

	warmup   int
	nMeasure int
	warm     *Machine
	// genState is the generator state at the measurement cut (== the warm
	// machine's generator position); kept so Trace can rematerialize the
	// measurement stream on demand without touching the warm machine.
	genState trace.GeneratorState
}

// Prepare warms a machine with warmup accesses of the named benchmark
// (under warmupConfig); evaluations then stream measure accesses from the
// warmed position. warmup ≤ 0 uses DefaultWarmupAccesses.
func Prepare(benchmark string, warmup, measure int, opt Options) (*Prepared, error) {
	if measure <= 0 {
		return nil, fmt.Errorf("sim: non-positive measurement length %d", measure)
	}
	if warmup <= 0 {
		warmup = DefaultWarmupAccesses
	}
	spec, err := trace.ByName(benchmark)
	if err != nil {
		return nil, err
	}
	m, err := NewMachine(spec, warmupConfig(), opt)
	if err != nil {
		return nil, err
	}
	// Warm the whole machine: LLC contents, controller queues/row buffers,
	// and warmup-accrued wear (subtracted out by window accounting). The
	// generator is left exactly at the measurement cut. Hybrid machines
	// settle the DRAM tier's dirty set here so it is charged to warmup,
	// not to every configuration's first measurement window.
	m.runOwn(warmup)
	m.settleHierarchy()
	return &Prepared{
		Spec:     spec,
		opt:      opt,
		warmup:   warmup,
		nMeasure: measure,
		warm:     m,
		genState: m.gen.Snapshot(),
	}, nil
}

// Checkpoint writes the prepared workload's warm machine to path as a
// standard machine checkpoint (see SaveCheckpoint). A later process can
// rebuild the Prepared with LoadCheckpoint + PreparedFromMachine and skip
// the warmup replay entirely.
func (p *Prepared) Checkpoint(path string) error {
	return SaveCheckpoint(path, p.warm)
}

// PreparedFromMachine wraps an already-warmed machine — typically one
// restored from a checkpoint written by Prepared.Checkpoint — as a Prepared
// measuring measure accesses per evaluation. The machine's generator must
// sit exactly at the measurement cut (where Prepare leaves it); warmup ≤ 0
// records DefaultWarmupAccesses, which only matters to EvaluateCold's
// replay. The machine is adopted: the caller must not touch it afterwards.
func PreparedFromMachine(m *Machine, warmup, measure int) (*Prepared, error) {
	if measure <= 0 {
		return nil, fmt.Errorf("sim: non-positive measurement length %d", measure)
	}
	if warmup <= 0 {
		warmup = DefaultWarmupAccesses
	}
	return &Prepared{
		Spec:     m.gen.Spec(),
		opt:      m.opt,
		warmup:   warmup,
		nMeasure: measure,
		warm:     m,
		genState: m.gen.Snapshot(),
	}, nil
}

// Trace materializes the measurement access stream. Each call regenerates a
// fresh slice from the measurement-cut generator state, so callers own the
// result outright: mutating it cannot perturb evaluations (which stream
// from cloned generator state and never read a shared slice).
func (p *Prepared) Trace() []trace.Access {
	return trace.Collect(trace.FromState(p.genState), p.nMeasure)
}

// Evaluate measures one configuration on the prepared workload by cloning
// the warm machine and streaming the measurement window from the clone's
// own generator. It is safe for concurrent use (see the Prepared
// concurrency contract) and returns the same Metrics for the same
// configuration no matter how many evaluations run in parallel.
func (p *Prepared) Evaluate(cfg config.Config) (Metrics, error) {
	m := p.warm.Clone()
	if err := m.SetConfig(cfg); err != nil {
		return Metrics{}, err
	}
	return p.measure(m)
}

// EvaluateCold measures one configuration the pre-clone way: build a fresh
// machine and replay the entire warmup before the measurement window. It
// must produce byte-identical Metrics to Evaluate — that equivalence is the
// correctness proof of the whole snapshot contract (enforced by tests) —
// and exists as the reference path for those tests and for the cold-vs-warm
// sweep benchmarks.
func (p *Prepared) EvaluateCold(cfg config.Config) (Metrics, error) {
	m, err := NewMachine(p.Spec, warmupConfig(), p.opt)
	if err != nil {
		return Metrics{}, err
	}
	m.runOwn(p.warmup)
	m.settleHierarchy()
	if err := m.SetConfig(cfg); err != nil {
		return Metrics{}, err
	}
	return p.measure(m)
}

// measure streams the measurement window on m — whose generator is
// positioned at the measurement cut — and returns the window metrics, with
// queued writes drained so their wear and energy are charged. The stream is
// identical for every configuration because every m starts from the same
// generator state.
func (p *Prepared) measure(m *Machine) (Metrics, error) {
	m.beginWindow()
	m.runOwn(p.nMeasure)
	m.finishRun()
	return m.windowMetrics(), nil
}

// Warmup advances the machine by n trace accesses and then resets window
// accounting — run it once before measuring so the LLC and controller reach
// steady state. It returns the instructions executed.
func (m *Machine) Warmup(n int) uint64 {
	before := m.insts
	m.runOwn(n)
	m.settleHierarchy()
	m.beginWindow()
	return m.insts - before
}

// Warmup advances every core round-robin for a total of n accesses and
// resets window accounting.
func (m *MultiMachine) Warmup(n int) uint64 {
	var before uint64
	for _, v := range m.insts {
		before += v
	}
	for i := 0; i < n; i++ {
		m.stepCore()
	}
	m.settleHierarchy()
	m.beginWindow()
	var after uint64
	for _, v := range m.insts {
		after += v
	}
	return after - before
}
