package sim

import (
	"reflect"
	"sync"
	"testing"

	"mct/internal/config"
)

// TestPreparedConcurrentEvaluate hammers one Prepared from many goroutines
// and checks every result against a serial reference evaluation. Under
// `go test -race` this audits the Prepared concurrency contract: Evaluate
// must not write any state shared between evaluations (warmed LLC, trace).
func TestPreparedConcurrentEvaluate(t *testing.T) {
	p, err := Prepare("lbm", 0, 5_000, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	space := config.NewSpace(config.SpaceOptions{IncludeWearQuota: true, WearQuotaTarget: 8})
	var cfgs []config.Config
	for i := 0; i < space.Len(); i += space.Len() / 12 {
		cfgs = append(cfgs, space.At(i))
	}
	cfgs = append(cfgs, config.Default(), config.StaticBaseline())

	want := make([]Metrics, len(cfgs))
	for i, c := range cfgs {
		if want[i], err = p.Evaluate(c); err != nil {
			t.Fatal(err)
		}
	}

	const goroutines = 8
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Stagger starting points so goroutines collide on different
			// configurations at any given moment.
			for k := 0; k < len(cfgs); k++ {
				i := (k + g) % len(cfgs)
				m, err := p.Evaluate(cfgs[i])
				if err != nil {
					errs[g] = err
					return
				}
				if !reflect.DeepEqual(m, want[i]) {
					t.Errorf("goroutine %d: concurrent Evaluate(cfg %d) diverged from serial reference", g, i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
}
