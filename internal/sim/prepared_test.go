package sim

import (
	"reflect"
	"testing"

	"mct/internal/config"
	"mct/internal/rng"
	"mct/internal/trace"
)

// TestTraceDefensiveCopy: the slice Trace returns is caller-owned — mutating
// it must perturb neither later evaluations nor later Trace calls. (The
// pre-streaming implementation handed out its internal measurement slice;
// a caller writing through it silently corrupted every subsequent
// evaluation.)
func TestTraceDefensiveCopy(t *testing.T) {
	p, err := Prepare("lbm", 2000, 4000, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.Default()
	before, err := p.Evaluate(cfg)
	if err != nil {
		t.Fatal(err)
	}

	tr := p.Trace()
	want := append([]trace.Access(nil), tr...)
	for i := range tr {
		tr[i] = trace.Access{InstGap: 1, Addr: 0xDEAD_0000, Write: true}
	}

	after, err := p.Evaluate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before, after) {
		t.Error("mutating the slice returned by Trace changed a later evaluation")
	}
	if got := p.Trace(); !reflect.DeepEqual(got, want) {
		t.Error("mutating the slice returned by Trace changed a later Trace call")
	}
}

// TestTraceIsTheMeasurementStream: the stream Trace materializes is exactly
// what evaluations measure — replaying it on a clone of the warm state
// yields the byte-identical metrics of Evaluate.
func TestTraceIsTheMeasurementStream(t *testing.T) {
	p, err := Prepare("ocean", 3000, 5000, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.Default()
	streamed, err := p.Evaluate(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Replay the materialized trace on a fresh clone of the warm machine.
	m := p.warm.Clone()
	if err := m.SetConfig(cfg); err != nil {
		t.Fatal(err)
	}
	m.beginWindow()
	m.runSource(trace.NewReplay(p.Trace()))
	m.finishRun()
	replayed := m.windowMetrics()

	if !reflect.DeepEqual(streamed, replayed) {
		t.Errorf("materialized-trace replay diverged from the streamed evaluation:\n%+v\nvs\n%+v", streamed, replayed)
	}
}

// TestEvaluateStreamingMatchesMaterialized: the thin-wrapper contract of the
// refactor — Evaluate (incremental generation) and EvaluateTrace over the
// equivalent materialized slice produce byte-identical metrics.
func TestEvaluateStreamingMatchesMaterialized(t *testing.T) {
	const n = 30_000
	opt := DefaultOptions()
	cfg := config.Default()
	cfg.FastCancellation = true
	cfg.SlowCancellation = true

	streamed, err := Evaluate("gups", n, cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := trace.ByName("gups")
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.Collect(trace.NewGenerator(spec, rng.NewRand(opt.Seed)), n)
	materialized, err := EvaluateTrace(tr, spec, cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(streamed, materialized) {
		t.Errorf("streaming Evaluate diverged from materialized EvaluateTrace:\n%+v\nvs\n%+v", streamed, materialized)
	}
}

// TestRunSourceMatchesRunAccesses: stepping a machine from a replayed
// source equals stepping an identical machine from its own generator.
func TestRunSourceMatchesRunAccesses(t *testing.T) {
	const n = 20_000
	spec, err := trace.ByName("milc")
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	a, err := NewMachine(spec, config.Default(), opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewMachine(spec, config.Default(), opt)
	if err != nil {
		t.Fatal(err)
	}
	own := a.RunAccesses(n)
	tr := trace.Collect(trace.NewGenerator(spec, rng.NewRand(opt.Seed)), n)
	replay := b.RunSource(trace.NewReplay(tr))
	if !reflect.DeepEqual(own, replay) {
		t.Errorf("RunSource over the materialized stream diverged from RunAccesses:\n%+v\nvs\n%+v", own, replay)
	}
}
