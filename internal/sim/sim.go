// Package sim wires the substrates into a full system: a synthetic workload
// trace feeds the last-level cache; misses, writebacks and eager mellow
// writebacks flow into the NVM controller; a simple out-of-order core model
// converts memory latencies into stall cycles. Each run yields the three
// objectives MCT optimizes — IPC, lifetime (years) and system energy (J) —
// matching the tradeoff space of §4.1.2.
package sim

import (
	"fmt"

	"mct/internal/cache"
	"mct/internal/config"
	"mct/internal/dram"
	"mct/internal/energy"
	"mct/internal/hierarchy"
	"mct/internal/nvm"
	"mct/internal/rng"
	"mct/internal/trace"
)

// Options configures a simulated machine.
type Options struct {
	Params nvm.Params
	Energy energy.Model

	// LLC geometry (Table 8: 2 MB, 16-way for single core).
	CacheBytes int
	CacheWays  int

	// Core model. The core commits at 1/BaseCPI IPC when unstalled
	// (8-issue OoO), pays LLCHitCycles per L3 hit, and exposes a fraction
	// of each memory latency as stall: ReadStallFactor for load misses,
	// StoreStallFactor for store misses (stores retire under the miss;
	// only a fraction of the fill latency is exposed), and full stalls for
	// write-queue backpressure.
	BaseCPI          float64
	LLCHitCycles     float64
	ReadStallFactor  float64
	StoreStallFactor float64

	// CPUCyclesPerMemCycle couples the 2 GHz core to the 400 MHz
	// controller.
	CPUCyclesPerMemCycle float64

	// EagerScanSets bounds the per-access victim scan for eager mellow
	// writes.
	EagerScanSets int

	// Seed drives the workload generator.
	Seed int64

	// Tiers selects the memory-hierarchy composition: the stock machine is
	// LLC→NVM; Tiers.DRAMCache interposes the DRAM cache tier.
	Tiers config.TierConfig
	// DRAM parameterizes the DRAM cache tier (geometry, latency, hot-page
	// policy); ignored unless Tiers.DRAMCache. A zero value falls back to
	// dram.DefaultParams, and Tiers.DRAMPromoteThreshold, when positive,
	// overrides the promotion threshold.
	DRAM dram.Params
}

// DefaultOptions returns the Table 8/9 system.
func DefaultOptions() Options {
	return Options{
		Params:               nvm.DefaultParams(),
		Energy:               energy.Default(),
		CacheBytes:           2 << 20,
		CacheWays:            16,
		BaseCPI:              0.5,
		LLCHitCycles:         10,
		ReadStallFactor:      0.7,
		StoreStallFactor:     0.3,
		CPUCyclesPerMemCycle: 5,
		EagerScanSets:        32,
		Seed:                 1,
		DRAM:                 dram.DefaultParams(),
	}
}

// Validate checks option sanity.
func (o Options) Validate() error {
	if err := o.Params.Validate(); err != nil {
		return err
	}
	if err := o.Energy.Validate(); err != nil {
		return err
	}
	if o.CacheBytes <= 0 || o.CacheWays <= 0 {
		return fmt.Errorf("sim: invalid cache geometry %d/%d", o.CacheBytes, o.CacheWays)
	}
	if o.BaseCPI <= 0 || o.CPUCyclesPerMemCycle <= 0 {
		return fmt.Errorf("sim: invalid core model (CPI %g, ratio %g)", o.BaseCPI, o.CPUCyclesPerMemCycle)
	}
	if o.ReadStallFactor < 0 || o.ReadStallFactor > 1 || o.StoreStallFactor < 0 || o.StoreStallFactor > 1 {
		return fmt.Errorf("sim: stall factors must be in [0,1]")
	}
	if err := o.Tiers.Validate(); err != nil {
		return err
	}
	if o.Tiers.DRAMCache {
		if err := o.dramParams().Validate(); err != nil {
			return err
		}
	}
	return nil
}

// dramParams resolves the effective DRAM tier parameters: the configured
// geometry (defaulted when zero) with the TierConfig promotion-threshold
// override applied.
func (o Options) dramParams() dram.Params {
	p := o.DRAM
	if p == (dram.Params{}) {
		p = dram.DefaultParams()
	}
	if o.Tiers.DRAMPromoteThreshold > 0 {
		p.PromoteThreshold = o.Tiers.DRAMPromoteThreshold
	}
	return p
}

// Metrics reports the objectives and supporting detail for a run or a
// window of a run.
type Metrics struct {
	Instructions uint64
	CPUCycles    float64
	IPC          float64

	Seconds       float64 // simulated wall time of the window
	LifetimeYears float64 // projected from the window's wear rate

	Energy  energy.Breakdown
	EnergyJ float64

	// Memory traffic in the window.
	MemReads  uint64
	MemWrites uint64 // demand + eager write issues

	// Technique activity in the window.
	EagerWrites     uint64
	CancelledWrites uint64
	ForcedWrites    uint64
	SlowWrites      uint64
	FastWrites      uint64
	QueueFullStalls uint64

	LLCHitRate float64
	// RowHitRate is the open-page hit rate of demand reads at the NVM.
	RowHitRate float64

	// DRAM tier activity in the window; all zero on NVM-only machines.
	// The raw counters (not just the rate) ride along so Accum can
	// re-aggregate windows exactly, including the tier's energy inputs.
	DRAMHits          uint64
	DRAMMisses        uint64
	DRAMWriteHits     uint64
	DRAMEagerAbsorbed uint64
	DRAMPromotions    uint64
	DRAMWritebacks    uint64
	// DRAMHitRate is the tier's demand-fill hit ratio for the window — the
	// learned hierarchy tradeoff dimension.
	DRAMHitRate float64

	// WearByBankDelta is the per-bank wear accrued in the window
	// (line-lifetimes); it allows windows of the same configuration to be
	// aggregated exactly (see Accum).
	WearByBankDelta []float64

	// Energy breakdown components needed to re-aggregate windows.
	WritesByRatio map[float64]uint64
}

// Vector returns [IPC, lifetime, energy] — the tradeoff-space encoding of
// §4.1.2.
func (m Metrics) Vector() [3]float64 { return [3]float64{m.IPC, m.LifetimeYears, m.EnergyJ} }

// Machine is a persistent simulated system executing one workload. It
// supports online reconfiguration (SetConfig) and windowed execution, which
// is what the MCT runtime drives during sampling and testing periods.
type Machine struct {
	opt Options
	gen *trace.Generator
	llc *cache.Cache
	// dram is the optional DRAM cache tier (opt.Tiers.DRAMCache); nil on
	// the stock NVM-only hierarchy.
	dram *dram.Cache
	ctrl *nvm.Controller
	// mem is the topmost memory-side tier the LLC's misses flow into: the
	// DRAM tier when present, otherwise the controller. The step loop
	// drives the hierarchy through this seam only.
	mem hierarchy.Mem

	cpuCycles float64 // CPU cycles elapsed
	insts     uint64

	// window bookkeeping
	winStartCycles float64
	winStartInsts  uint64
	winStartStats  nvm.Stats
	winStartCache  cache.Stats
	winStartDRAM   dram.Stats

	// obsv is the optional observer (AttachObserver); nil means no
	// instrumentation and zero overhead.
	obsv *machineObs

	// batch is the machine's reusable scratch buffer for streaming runs:
	// allocated once on first use, refilled in place every iteration, never
	// shared (Clone drops it so clones allocate their own — a shared backing
	// array would race under concurrent evaluation). It is scratch, not
	// state: absent from MachineState, and its contents are meaningless
	// between runs.
	batch []trace.Access
}

// StepBatchSize is the batch granularity of the streaming run loops: large
// enough to amortize per-batch overhead into noise, small enough that a
// machine's resident trace memory stays a fixed ~64 KB regardless of run
// length.
const StepBatchSize = 4096

// batchBuf returns the machine's scratch batch buffer, allocating it on
// first use.
func (m *Machine) batchBuf() []trace.Access {
	if m.batch == nil {
		m.batch = make([]trace.Access, StepBatchSize)
	}
	return m.batch
}

// NewMachine builds a machine running spec under cfg.
func NewMachine(spec trace.Spec, cfg config.Config, opt Options) (*Machine, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	llc, err := cache.New(opt.CacheBytes, opt.CacheWays)
	if err != nil {
		return nil, err
	}
	ctrl, err := nvm.New(cfg, opt.Params)
	if err != nil {
		return nil, err
	}
	m := &Machine{
		opt:  opt,
		gen:  trace.NewGenerator(spec, rng.NewRand(opt.Seed)),
		llc:  llc,
		ctrl: ctrl,
		mem:  ctrl,
	}
	if opt.Tiers.DRAMCache {
		d, err := dram.New(opt.dramParams(), ctrl)
		if err != nil {
			return nil, err
		}
		m.dram = d
		m.mem = d
	}
	m.beginWindow()
	return m, nil
}

// Config returns the active configuration.
func (m *Machine) Config() config.Config { return m.ctrl.Config() }

// Options returns the machine's construction options.
func (m *Machine) Options() Options { return m.opt }

// SetConfig reconfigures the NVM controller in place.
func (m *Machine) SetConfig(cfg config.Config) error { return m.ctrl.SetConfig(cfg) }

// Instructions returns total committed instructions.
func (m *Machine) Instructions() uint64 { return m.insts }

// CPUCycles returns total elapsed CPU cycles.
func (m *Machine) CPUCycles() float64 { return m.cpuCycles }

// Controller exposes the NVM controller (diagnostics and tests).
func (m *Machine) Controller() *nvm.Controller { return m.ctrl }

// DRAM exposes the DRAM cache tier, nil on NVM-only machines
// (diagnostics and tests).
func (m *Machine) DRAM() *dram.Cache { return m.dram }

// Tiers returns the hierarchy's ordered tier pipeline, front (CPU side)
// first.
func (m *Machine) Tiers() []hierarchy.Tier {
	ts := make([]hierarchy.Tier, 0, 3)
	ts = append(ts, m.llc)
	if m.dram != nil {
		ts = append(ts, m.dram)
	}
	return append(ts, m.ctrl)
}

// SetPromoteThreshold retunes the DRAM tier's hot-page promotion
// threshold online; errors on NVM-only machines.
func (m *Machine) SetPromoteThreshold(n int) error {
	if m.dram == nil {
		return fmt.Errorf("sim: machine has no DRAM tier")
	}
	return m.dram.SetPromoteThreshold(n)
}

// dramStats returns the DRAM tier's counters, zero on NVM-only machines.
func (m *Machine) dramStats() dram.Stats {
	if m.dram == nil {
		return dram.Stats{}
	}
	return m.dram.Stats()
}

func (m *Machine) beginWindow() {
	m.winStartCycles = m.cpuCycles
	m.winStartInsts = m.insts
	m.winStartStats = m.ctrl.Stats()
	m.winStartCache = m.llc.Stats()
	m.winStartDRAM = m.dramStats()
}

func (m *Machine) memNow() uint64 {
	return uint64(m.cpuCycles / m.opt.CPUCyclesPerMemCycle)
}

// step executes one trace access. It is the simulator's inner loop: the
// hotpath directive below makes every function it reaches subject to the
// allochot allocation audit.
//
//mctlint:hotpath
func (m *Machine) step(a trace.Access) {
	o := &m.opt
	m.cpuCycles += float64(a.InstGap) * o.BaseCPI
	m.insts += uint64(a.InstGap)

	res := m.llc.Access(a.Addr, a.Write)
	if res.Hit {
		m.cpuCycles += o.LLCHitCycles
	} else {
		now := m.memNow()
		if res.Writeback {
			accepted := m.mem.Write(res.WritebackAddr, now)
			if accepted > now {
				// Write-queue backpressure fully stalls the core.
				m.cpuCycles += float64(accepted-now) * o.CPUCyclesPerMemCycle
				now = accepted
			}
		}
		done := m.mem.Read(res.FillAddr, now)
		latCPU := float64(done-now) * o.CPUCyclesPerMemCycle
		if a.Write {
			m.cpuCycles += latCPU * o.StoreStallFactor
		} else {
			m.cpuCycles += latCPU * o.ReadStallFactor
		}
	}

	// Eager mellow writes: harvest at most one dirty victim per access
	// when the technique is on and the hierarchy has room (§3.1).
	cfg := m.ctrl.Config()
	if cfg.EagerWritebacks && m.mem.EagerSpace() {
		useless := m.llc.UselessPositions(cfg.EagerThreshold)
		if useless > 0 {
			if addr, ok := m.llc.NextEagerVictim(useless, o.EagerScanSets); ok {
				m.mem.EagerWrite(addr, m.memNow())
			}
		}
	}
}

// StepBatch executes a batch of trace accesses. It is the batched inner
// loop of streaming simulation — together with trace.Source.Fill it forms
// the steady-state hot path, which must stay allocation-free.
//
//mctlint:hotpath
func (m *Machine) StepBatch(batch []trace.Access) {
	for i := range batch {
		m.step(batch[i])
	}
}

// runOwn streams n accesses from the machine's own generator through the
// step loop, refilling the reusable batch buffer in place. The access
// stream is byte-identical to n individual gen.Next/step pairs (the Fill
// batch-size-invariance contract).
func (m *Machine) runOwn(n int) {
	buf := m.batchBuf()
	for n > 0 {
		k := len(buf)
		if k > n {
			k = n
		}
		m.gen.Fill(buf[:k])
		m.StepBatch(buf[:k])
		n -= k
	}
}

// runSource streams src to exhaustion through the step loop via the
// reusable batch buffer.
func (m *Machine) runSource(src trace.Source) {
	buf := m.batchBuf()
	for {
		k := src.Fill(buf)
		if k == 0 {
			return
		}
		m.StepBatch(buf[:k])
	}
}

// RunAccesses executes n trace accesses and returns the metrics of that
// window.
func (m *Machine) RunAccesses(n int) Metrics {
	m.beginWindow()
	m.runOwn(n)
	return m.windowMetrics()
}

// RunSource streams src to exhaustion through the machine — in reusable
// batches, so memory stays O(StepBatchSize) however long the stream — and
// returns the metrics of that window.
func (m *Machine) RunSource(src trace.Source) Metrics {
	m.beginWindow()
	m.runSource(src)
	return m.windowMetrics()
}

// RunInstructions executes trace accesses until at least n instructions
// have committed in this window, returning the window metrics. It steps
// per-access rather than batched: the stop condition depends on each
// access's instruction gap, and prefetching a batch would advance the
// generator past the window boundary, perturbing where the next window
// starts.
func (m *Machine) RunInstructions(n uint64) Metrics {
	m.beginWindow()
	m.StepInstructions(n)
	return m.windowMetrics()
}

// StepInstructions executes trace accesses until at least n more
// instructions have committed, without touching window accounting. Because
// the stop condition is a target instruction count and stepping is
// per-access, splitting a run into chunks produces the identical access
// stream as one straight run: StepInstructions(a) then StepInstructions(b)
// steps exactly the accesses of StepInstructions(a+b). Combined with
// checkpoints — window-start markers ride MachineState — this is what lets
// a resumed run finish byte-identical to an uninterrupted one.
func (m *Machine) StepInstructions(n uint64) {
	target := m.insts + n
	for m.insts < target {
		m.step(m.gen.Next())
	}
}

// WindowMetrics returns the metrics of the current measurement window (since
// the last beginWindow — e.g. the one opened by Warmup) without ending it.
func (m *Machine) WindowMetrics() Metrics { return m.windowMetrics() }

// WindowInstructions returns the instructions committed in the current
// measurement window. A resumed run uses it to compute how many
// instructions of its target remain.
func (m *Machine) WindowInstructions() uint64 { return m.insts - m.winStartInsts }

// windowMetrics computes metrics for the current window (since the last
// beginWindow) without ending it.
func (m *Machine) windowMetrics() Metrics {
	st := m.ctrl.Stats()
	cs := m.llc.Stats()
	ds := m.dramStats()
	if m.obsv != nil {
		m.obsv.publish(cs, st, ds, true)
	}
	return m.metricsBetween(m.winStartCycles, m.winStartInsts, m.winStartStats, m.winStartCache, m.winStartDRAM, st, cs, ds)
}

func (m *Machine) metricsBetween(c0 float64, i0 uint64, s0 nvm.Stats, llc0 cache.Stats, d0 dram.Stats, s1 nvm.Stats, llc1 cache.Stats, d1 dram.Stats) Metrics {
	o := &m.opt
	dCycles := m.cpuCycles - c0
	dInsts := m.insts - i0
	seconds := dCycles / o.CPUCyclesPerMemCycle / o.Params.MemCyclesPerSec

	var mt Metrics
	mt.Instructions = dInsts
	mt.CPUCycles = dCycles
	if dCycles > 0 {
		mt.IPC = float64(dInsts) / dCycles
	}
	mt.Seconds = seconds

	// Lifetime from the window's per-bank wear deltas.
	wearDelta := make([]float64, len(s1.WearByBank))
	var maxWear float64
	for b, w1 := range s1.WearByBank {
		d := w1 - s0.WearByBank[b]
		wearDelta[b] = d
		if d > maxWear {
			maxWear = d
		}
	}
	mt.WearByBankDelta = wearDelta
	budget := float64(o.Params.LinesPerBank) * o.Params.WearLevelEff
	if maxWear <= 0 || seconds <= 0 {
		mt.LifetimeYears = 1000
	} else {
		mt.LifetimeYears = seconds * budget / maxWear / nvm.SecondsPerYear
		if mt.LifetimeYears > 1000 {
			mt.LifetimeYears = 1000
		}
	}

	dst := diffStats(s0, s1)
	if rh, rm := dst.RowHits, dst.RowMisses; rh+rm > 0 {
		mt.RowHitRate = float64(rh) / float64(rh+rm)
	}
	mt.MemReads = dst.Reads
	mt.MemWrites = dst.DemandWrites + dst.EagerWrites
	mt.EagerWrites = dst.EagerWrites
	mt.CancelledWrites = dst.CancelledWrites
	mt.ForcedWrites = dst.ForcedWrites
	mt.SlowWrites = dst.SlowWrites
	mt.FastWrites = dst.FastWrites
	mt.QueueFullStalls = dst.QueueFullStalls

	if m.dram != nil {
		dd := diffDRAM(d0, d1)
		mt.DRAMHits = dd.Hits
		mt.DRAMMisses = dd.Misses
		mt.DRAMWriteHits = dd.WriteHits
		mt.DRAMEagerAbsorbed = dd.EagerAbsorbed
		mt.DRAMPromotions = dd.Promotions
		mt.DRAMWritebacks = dd.Writebacks
		mt.DRAMHitRate = dd.HitRate()
		mt.Energy = o.Energy.ComputeTiered(dInsts, seconds, dst, dramReads(dd), dramWrites(dd))
	} else {
		mt.Energy = o.Energy.Compute(dInsts, seconds, dst)
	}
	mt.EnergyJ = mt.Energy.Total()
	mt.WritesByRatio = dst.WritesByRatio

	hits := llc1.Hits - llc0.Hits
	total := hits + (llc1.Misses - llc0.Misses)
	if total > 0 {
		mt.LLCHitRate = float64(hits) / float64(total)
	}
	return mt
}

// diffDRAM returns s1-s0 (all fields are monotone counters).
func diffDRAM(s0, s1 dram.Stats) dram.Stats {
	return dram.Stats{
		Hits:          s1.Hits - s0.Hits,
		Misses:        s1.Misses - s0.Misses,
		WriteHits:     s1.WriteHits - s0.WriteHits,
		WriteMisses:   s1.WriteMisses - s0.WriteMisses,
		EagerAbsorbed: s1.EagerAbsorbed - s0.EagerAbsorbed,
		Promotions:    s1.Promotions - s0.Promotions,
		Writebacks:    s1.Writebacks - s0.Writebacks,
		DrainFlushes:  s1.DrainFlushes - s0.DrainFlushes,
	}
}

// dramReads/dramWrites map tier counters to DRAM array accesses for the
// energy model: reads are tier-serviced fills; writes are absorbed LLC
// writebacks (demand + eager) plus line installs.
func dramReads(d dram.Stats) uint64 { return d.Hits }
func dramWrites(d dram.Stats) uint64 {
	return d.WriteHits + d.EagerAbsorbed + d.Promotions
}

// diffStats returns s1-s0 for the counters used by metrics/energy.
func diffStats(s0, s1 nvm.Stats) nvm.Stats {
	d := nvm.Stats{
		Reads:           s1.Reads - s0.Reads,
		RowHits:         s1.RowHits - s0.RowHits,
		RowMisses:       s1.RowMisses - s0.RowMisses,
		ReadLatencySum:  s1.ReadLatencySum - s0.ReadLatencySum,
		DemandWrites:    s1.DemandWrites - s0.DemandWrites,
		EagerWrites:     s1.EagerWrites - s0.EagerWrites,
		FastWrites:      s1.FastWrites - s0.FastWrites,
		SlowWrites:      s1.SlowWrites - s0.SlowWrites,
		ForcedWrites:    s1.ForcedWrites - s0.ForcedWrites,
		CancelledWrites: s1.CancelledWrites - s0.CancelledWrites,
		QueueFullStalls: s1.QueueFullStalls - s0.QueueFullStalls,
		WritesByRatio:   make(map[float64]uint64),
	}
	for r, n1 := range s1.WritesByRatio {
		if n0 := s0.WritesByRatio[r]; n1 > n0 {
			d.WritesByRatio[r] = n1 - n0
		}
	}
	return d
}

// finishRun drains the memory hierarchy — dirty DRAM-tier lines flush to
// NVM, then queued writes retire — so their wear and energy are charged
// to the run, advancing the CPU clock if the drain outlasts it.
func (m *Machine) finishRun() {
	final := m.mem.Drain(m.memNow())
	if f := float64(final) * m.opt.CPUCyclesPerMemCycle; f > m.cpuCycles {
		m.cpuCycles = f
	}
}

// settleHierarchy flushes the DRAM tier's warmup-accrued dirty set (and
// the controller queue behind it) so measurement windows drain only their
// own writes — without this, the first window after warmup would be
// charged the whole warmup's dirty-set writeback storm. NVM-only machines
// are untouched: their only buffered state is the bounded write queue,
// whose end-of-window drain is part of the measured cost.
func (m *Machine) settleHierarchy() {
	if m.dram == nil {
		return
	}
	m.finishRun()
}

// settleHierarchy is the multi-core analog: after the flush, every core's
// clock catches up to the drain point.
func (m *MultiMachine) settleHierarchy() {
	if m.dram == nil {
		return
	}
	var maxCycles float64
	for _, c := range m.cpuCycles {
		if c > maxCycles {
			maxCycles = c
		}
	}
	final := m.mem.Drain(uint64(maxCycles / m.opt.CPUCyclesPerMemCycle))
	if f := float64(final) * m.opt.CPUCyclesPerMemCycle; f > maxCycles {
		maxCycles = f
	}
	for i := range m.cpuCycles {
		if m.cpuCycles[i] < maxCycles {
			m.cpuCycles[i] = maxCycles
		}
	}
}

// EvaluateSource streams src to exhaustion on a fresh machine under cfg and
// returns the run metrics (with queued writes drained so their wear and
// energy are charged). This is the streaming core every evaluation
// entrypoint reduces to: memory stays O(StepBatchSize) regardless of stream
// length, so multi-billion-access runs are memory-bounded.
func EvaluateSource(src trace.Source, spec trace.Spec, cfg config.Config, opt Options) (Metrics, error) {
	m, err := NewMachine(spec, cfg, opt)
	if err != nil {
		return Metrics{}, err
	}
	m.beginWindow()
	m.runSource(src)
	m.finishRun()
	return m.windowMetrics(), nil
}

// EvaluateTrace runs a pre-materialized trace (identical for every
// configuration — the fair-comparison methodology of trace-driven
// simulation) on a fresh machine under cfg and returns the run metrics. It
// is a thin wrapper over the streaming path: the slice is replayed
// batch-by-batch, never copied.
func EvaluateTrace(tr []trace.Access, spec trace.Spec, cfg config.Config, opt Options) (Metrics, error) {
	return EvaluateSource(trace.NewReplay(tr), spec, cfg, opt)
}

// Evaluate streams nAccesses of the named benchmark (seeded by opt.Seed)
// through a fresh machine under cfg. The stream is generated incrementally
// — a thin wrapper over EvaluateSource, producing the byte-identical
// metrics the old materialize-then-replay path did, in O(batch) memory.
func Evaluate(benchmark string, nAccesses int, cfg config.Config, opt Options) (Metrics, error) {
	spec, err := trace.ByName(benchmark)
	if err != nil {
		return Metrics{}, err
	}
	src := trace.Limit(trace.NewGenerator(spec, rng.NewRand(opt.Seed)), nAccesses)
	return EvaluateSource(src, spec, cfg, opt)
}
