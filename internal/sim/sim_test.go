package sim

import (
	"math"
	"testing"

	"mct/internal/config"
	"mct/internal/trace"
)

func quickOptions() Options {
	o := DefaultOptions()
	return o
}

func mustMachine(t *testing.T, bench string, cfg config.Config) *Machine {
	t.Helper()
	spec, err := trace.ByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(spec, cfg, quickOptions())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestOptionsValidate(t *testing.T) {
	if err := DefaultOptions().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Options){
		func(o *Options) { o.CacheBytes = 0 },
		func(o *Options) { o.CacheWays = 0 },
		func(o *Options) { o.BaseCPI = 0 },
		func(o *Options) { o.CPUCyclesPerMemCycle = 0 },
		func(o *Options) { o.ReadStallFactor = 2 },
		func(o *Options) { o.StoreStallFactor = -1 },
		func(o *Options) { o.Params.Banks = 0 },
		func(o *Options) { o.Energy.NVMReadEnergy = -1 },
	}
	for i, mut := range bad {
		o := DefaultOptions()
		mut(&o)
		if err := o.Validate(); err == nil {
			t.Errorf("mutation %d should invalidate options", i)
		}
	}
}

func TestMachineDeterministic(t *testing.T) {
	a := mustMachine(t, "lbm", config.StaticBaseline())
	b := mustMachine(t, "lbm", config.StaticBaseline())
	ma := a.RunInstructions(500_000)
	mb := b.RunInstructions(500_000)
	if ma.IPC != mb.IPC || ma.EnergyJ != mb.EnergyJ || ma.LifetimeYears != mb.LifetimeYears {
		t.Fatalf("nondeterministic: %+v vs %+v", ma.Vector(), mb.Vector())
	}
}

func TestRunInstructionsMeetsTarget(t *testing.T) {
	m := mustMachine(t, "milc", config.Default())
	w := m.RunInstructions(200_000)
	if w.Instructions < 200_000 {
		t.Fatalf("ran %d insts, want ≥ 200000", w.Instructions)
	}
	if w.IPC <= 0 || w.Seconds <= 0 {
		t.Fatalf("degenerate metrics: %+v", w)
	}
}

func TestMetricsVector(t *testing.T) {
	m := Metrics{IPC: 1, LifetimeYears: 2, EnergyJ: 3}
	if m.Vector() != [3]float64{1, 2, 3} {
		t.Fatal("Vector order must be [IPC, lifetime, energy]")
	}
}

func TestWarmupEnablesWrites(t *testing.T) {
	m := mustMachine(t, "stream", config.Default())
	m.Warmup(60_000)
	w := m.RunInstructions(200_000)
	if w.MemWrites == 0 {
		t.Fatal("warmed stream run must produce writebacks")
	}
	if w.LifetimeYears >= 1000 {
		t.Fatalf("warmed lifetime = %v, want finite", w.LifetimeYears)
	}
}

func TestColdCacheProducesNoWritesEarly(t *testing.T) {
	m := mustMachine(t, "stream", config.Default())
	w := m.RunInstructions(50_000) // « cache capacity
	if w.MemWrites != 0 {
		t.Fatalf("cold cache produced %d writes", w.MemWrites)
	}
}

func TestSetConfigChangesBehaviour(t *testing.T) {
	m := mustMachine(t, "lbm", config.Default())
	m.Warmup(60_000)
	fast := m.RunInstructions(300_000)
	slow := config.Default()
	slow.FastLatency = 4.0
	slow.SlowLatency = 4.0
	if err := m.SetConfig(slow); err != nil {
		t.Fatal(err)
	}
	slowW := m.RunInstructions(300_000)
	if slowW.IPC >= fast.IPC {
		t.Fatalf("4x writes must reduce IPC: %v vs %v", slowW.IPC, fast.IPC)
	}
	if slowW.LifetimeYears <= fast.LifetimeYears {
		t.Fatalf("4x writes must extend lifetime: %v vs %v", slowW.LifetimeYears, fast.LifetimeYears)
	}
}

func TestEagerWritebacksActivate(t *testing.T) {
	cfg := config.Default()
	cfg.EagerWritebacks = true
	cfg.EagerThreshold = 32
	cfg.SlowLatency = 2.0
	m := mustMachine(t, "lbm", cfg)
	m.Warmup(60_000)
	w := m.RunInstructions(300_000)
	if w.EagerWrites == 0 {
		t.Fatal("eager mellow writes never issued")
	}
}

func TestCancellationActivates(t *testing.T) {
	cfg := config.StaticBaseline()
	cfg.WearQuota = false
	m := mustMachine(t, "gups", cfg)
	m.Warmup(60_000)
	w := m.RunInstructions(300_000)
	if w.CancelledWrites == 0 {
		t.Fatal("slow cancellation never triggered on gups")
	}
}

func TestWearQuotaForcedWritesUnderStress(t *testing.T) {
	cfg := config.Default()
	cfg.WearQuota = true
	cfg.WearQuotaTarget = 10
	m := mustMachine(t, "gups", cfg) // heavy writer at 1× cannot meet 10y
	m.Warmup(60_000)
	w := m.RunInstructions(800_000)
	if w.ForcedWrites == 0 {
		t.Fatal("wear quota never engaged on an over-budget workload")
	}
}

func TestEvaluateMatchesPrepared(t *testing.T) {
	// Two Prepared evaluations of the same config must agree exactly
	// (clone isolation).
	p, err := Prepare("leslie3d", 40_000, 10_000, quickOptions())
	if err != nil {
		t.Fatal(err)
	}
	a, err := p.Evaluate(config.StaticBaseline())
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Evaluate(config.StaticBaseline())
	if err != nil {
		t.Fatal(err)
	}
	if a.IPC != b.IPC || a.EnergyJ != b.EnergyJ {
		t.Fatalf("prepared evaluations differ: %+v vs %+v", a.Vector(), b.Vector())
	}
	// And a different config must (generally) differ.
	c, err := p.Evaluate(config.Default())
	if err != nil {
		t.Fatal(err)
	}
	if c.IPC == a.IPC && c.EnergyJ == a.EnergyJ {
		t.Fatal("distinct configs produced identical metrics — suspicious")
	}
}

func TestPrepareErrors(t *testing.T) {
	if _, err := Prepare("nope", 0, 100, quickOptions()); err == nil {
		t.Fatal("unknown benchmark must fail")
	}
	if _, err := Prepare("lbm", 0, 0, quickOptions()); err == nil {
		t.Fatal("zero measurement must fail")
	}
	o := quickOptions()
	o.CacheBytes = 0
	if _, err := Prepare("lbm", 0, 100, o); err == nil {
		t.Fatal("invalid options must fail")
	}
}

func TestAccumMatchesSingleWindow(t *testing.T) {
	// Running one config in chunks and accumulating must equal running it
	// in one window.
	mkRun := func(chunks int) Metrics {
		m := mustMachine(t, "milc", config.StaticBaseline())
		m.Warmup(60_000)
		if chunks == 1 {
			return m.RunInstructions(400_000)
		}
		acc := NewAccum(m.Options())
		for i := 0; i < chunks; i++ {
			acc.Add(m.RunInstructions(400_000 / uint64(chunks)))
		}
		return acc.Metrics()
	}
	one := mkRun(1)
	four := mkRun(4)
	relErr := func(a, b float64) float64 { return math.Abs(a-b) / math.Max(math.Abs(b), 1e-12) }
	// Instruction boundaries differ slightly; the aggregates must agree
	// closely.
	if relErr(four.IPC, one.IPC) > 0.02 {
		t.Fatalf("accumulated IPC %v vs single %v", four.IPC, one.IPC)
	}
	if relErr(four.EnergyJ, one.EnergyJ) > 0.05 {
		t.Fatalf("accumulated energy %v vs single %v", four.EnergyJ, one.EnergyJ)
	}
	if relErr(four.LifetimeYears, one.LifetimeYears) > 0.1 {
		t.Fatalf("accumulated lifetime %v vs single %v", four.LifetimeYears, one.LifetimeYears)
	}
}

func TestAccumEmpty(t *testing.T) {
	acc := NewAccum(DefaultOptions())
	m := acc.Metrics()
	if m.Instructions != 0 || m.IPC != 0 {
		t.Fatalf("empty accumulator metrics: %+v", m)
	}
	if acc.Windows() != 0 {
		t.Fatal("empty accumulator window count")
	}
}

func TestEvaluateUnknownBenchmark(t *testing.T) {
	if _, err := Evaluate("nope", 100, config.Default(), quickOptions()); err == nil {
		t.Fatal("unknown benchmark must error")
	}
}

func TestControllerAccessor(t *testing.T) {
	m := mustMachine(t, "lbm", config.Default())
	if m.Controller() == nil || m.Controller().Config() != config.Default().Canonical() {
		t.Fatal("controller accessor wrong")
	}
	if m.Options().CacheBytes != DefaultOptions().CacheBytes {
		t.Fatal("options accessor wrong")
	}
}
