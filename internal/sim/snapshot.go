// Snapshot support for machines: deep-copy cloning (warm-start sweeps,
// speculative what-if branches) and versioned on-disk checkpoints
// (pausable/resumable long runs).
//
// The snapshot contract (see DESIGN.md): Clone shares nothing mutable with
// its parent — every layer (trace generator incl. PRNG position, LLC, NVM
// controller, window bookkeeping stats) is deep-copied, so a clone replayed
// over the same accesses produces byte-identical metrics while the parent
// stays frozen.
package sim

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"

	"mct/internal/cache"
	"mct/internal/dram"
	"mct/internal/hierarchy"
	"mct/internal/nvm"
	"mct/internal/obs"
	"mct/internal/trace"
)

// Clone returns an independent deep copy of the machine: both continue the
// identical simulation from the current point, and stepping one never
// perturbs the other. Options are pure values and copy by assignment.
func (m *Machine) Clone() *Machine {
	n := *m
	// The scratch batch buffer is per-machine: dropping it here makes the
	// clone allocate its own on first streaming run. Copying the slice
	// header would share the backing array, a data race under concurrent
	// Prepared.Evaluate.
	n.batch = nil
	n.gen = m.gen.Clone()
	n.llc = m.llc.Clone()
	n.ctrl = m.ctrl.Clone()
	// Rebuild the tier chain bottom-up onto the cloned controller so the
	// clone's mem seam points into its own hierarchy, not the parent's.
	n.mem = hierarchy.Mem(n.ctrl)
	if m.dram != nil {
		n.dram = m.dram.Clone(n.ctrl)
		n.mem = n.dram
	}
	n.winStartStats = m.winStartStats.Clone()
	n.winStartCache = m.winStartCache.Clone()
	n.winStartDRAM = m.winStartDRAM.Clone()
	if m.obsv != nil {
		n.obsv = m.obsv.clone()
	}
	return &n
}

// Clone returns an independent deep copy of the multi-core machine: per-core
// generators and clocks, shared LLC and controller, window bookkeeping.
func (m *MultiMachine) Clone() *MultiMachine {
	n := *m
	n.gens = make([]*trace.Generator, len(m.gens))
	for i, g := range m.gens {
		n.gens[i] = g.Clone()
	}
	n.llc = m.llc.Clone()
	n.ctrl = m.ctrl.Clone()
	n.mem = hierarchy.Mem(n.ctrl)
	if m.dram != nil {
		n.dram = m.dram.Clone(n.ctrl)
		n.mem = n.dram
	}
	n.winStartDRAM = m.winStartDRAM.Clone()
	n.cpuCycles = append([]float64(nil), m.cpuCycles...)
	n.insts = append([]uint64(nil), m.insts...)
	n.winStartCycles = append([]float64(nil), m.winStartCycles...)
	n.winStartInsts = append([]uint64(nil), m.winStartInsts...)
	n.winStartStats = m.winStartStats.Clone()
	if m.obsv != nil {
		n.obsv = m.obsv.clone()
	}
	return &n
}

// MachineState is the complete serializable state of a Machine, the payload
// of on-disk checkpoints.
type MachineState struct {
	Options Options

	Gen  trace.GeneratorState
	LLC  cache.Snapshot
	Ctrl nvm.Snapshot

	CPUCycles float64
	Insts     uint64

	WinStartCycles float64
	WinStartInsts  uint64
	WinStartStats  nvm.Stats
	WinStartCache  cache.Stats

	// Obs is the attached observer registry's state, nil when the machine
	// had none. A gob-additive field: version-1 checkpoints written before
	// observers existed decode with Obs nil, which restores to "no
	// observer" — exactly their meaning.
	Obs *obs.State

	// DRAM is the DRAM cache tier's state, nil on NVM-only machines.
	// Gob-additive like Obs: checkpoints written before the tier seam
	// existed decode with DRAM nil — an NVM-only hierarchy, exactly their
	// meaning. WinStartDRAM rides along the same way (zero for them).
	DRAM         *dram.Snapshot
	WinStartDRAM dram.Stats
}

// Snapshot captures the machine's complete state. Pending window deltas
// are published first, so the captured registry accounts everything up to
// the snapshot point and a restored machine (whose publisher baselines are
// rebased to the restored stats) continues without gaps or double counts.
//
//mctlint:ignore clonefields batch is a scratch buffer, not state, and mem is derived wiring (dram or ctrl): a restored machine allocates its own buffer and rewires the seam from the restored tiers
func (m *Machine) Snapshot() MachineState {
	var obsState *obs.State
	if m.obsv != nil {
		m.obsv.publish(m.llc.Stats(), m.ctrl.Stats(), m.dramStats(), false)
		s := m.obsv.reg.State()
		obsState = &s
	}
	var dramState *dram.Snapshot
	if m.dram != nil {
		s := m.dram.Snapshot()
		dramState = &s
	}
	return MachineState{
		Obs:            obsState,
		DRAM:           dramState,
		Options:        m.opt,
		Gen:            m.gen.Snapshot(),
		LLC:            m.llc.Snapshot(),
		Ctrl:           m.ctrl.Snapshot(),
		CPUCycles:      m.cpuCycles,
		Insts:          m.insts,
		WinStartCycles: m.winStartCycles,
		WinStartInsts:  m.winStartInsts,
		WinStartStats:  m.winStartStats.Clone(),
		WinStartCache:  m.winStartCache.Clone(),
		WinStartDRAM:   m.winStartDRAM.Clone(),
	}
}

// RestoreMachine rebuilds a machine from a state captured with Snapshot.
// The rebuilt machine continues the identical simulation.
func RestoreMachine(st MachineState) (*Machine, error) {
	if err := st.Options.Validate(); err != nil {
		return nil, fmt.Errorf("sim: checkpoint options: %w", err)
	}
	if st.Ctrl.Params != st.Options.Params {
		return nil, fmt.Errorf("sim: checkpoint controller params disagree with machine options")
	}
	llc, err := cache.FromSnapshot(st.LLC)
	if err != nil {
		return nil, fmt.Errorf("sim: checkpoint LLC: %w", err)
	}
	ctrl, err := nvm.FromSnapshot(st.Ctrl)
	if err != nil {
		return nil, fmt.Errorf("sim: checkpoint controller: %w", err)
	}
	if len(st.Gen.Spec.Phases) == 0 {
		return nil, fmt.Errorf("sim: checkpoint generator has no phases")
	}
	if st.Options.Tiers.DRAMCache != (st.DRAM != nil) {
		return nil, fmt.Errorf("sim: checkpoint tier composition disagrees with machine options")
	}
	m := &Machine{
		opt:            st.Options,
		gen:            trace.FromState(st.Gen),
		llc:            llc,
		ctrl:           ctrl,
		mem:            ctrl,
		cpuCycles:      st.CPUCycles,
		insts:          st.Insts,
		winStartCycles: st.WinStartCycles,
		winStartInsts:  st.WinStartInsts,
		winStartStats:  st.WinStartStats.Clone(),
		winStartCache:  st.WinStartCache.Clone(),
		winStartDRAM:   st.WinStartDRAM.Clone(),
	}
	if st.DRAM != nil {
		d, err := dram.FromSnapshot(*st.DRAM, ctrl)
		if err != nil {
			return nil, fmt.Errorf("sim: checkpoint DRAM tier: %w", err)
		}
		m.dram = d
		m.mem = d
	}
	if st.Obs != nil {
		reg, err := obs.FromState(*st.Obs)
		if err != nil {
			return nil, fmt.Errorf("sim: checkpoint observer: %w", err)
		}
		m.AttachObserver(reg)
	}
	return m, nil
}

const (
	checkpointMagic   = "mct-machine-checkpoint"
	checkpointVersion = 1
)

// checkpointEnvelope versions the on-disk format so stale checkpoints fail
// loudly instead of decoding garbage.
type checkpointEnvelope struct {
	Magic   string
	Version int
	State   MachineState
}

// SaveCheckpoint writes the machine's state to path (gob, versioned). The
// write is atomic: a temp file in the target directory is renamed over path
// only after a complete encode, so a crash never leaves a torn checkpoint.
func SaveCheckpoint(path string, m *Machine) error {
	var buf bytes.Buffer
	env := checkpointEnvelope{Magic: checkpointMagic, Version: checkpointVersion, State: m.Snapshot()}
	if err := gob.NewEncoder(&buf).Encode(env); err != nil {
		return fmt.Errorf("sim: encode checkpoint: %w", err)
	}
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ".checkpoint-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) //mctlint:ignore uncheckederr best-effort cleanup; after a successful rename the temp path no longer exists
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close() //mctlint:ignore uncheckederr the write error is the one worth reporting; the temp file is removed either way
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// LoadCheckpoint rebuilds a machine from a checkpoint written by
// SaveCheckpoint.
func LoadCheckpoint(path string) (*Machine, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var env checkpointEnvelope
	if err := gob.NewDecoder(f).Decode(&env); err != nil {
		return nil, fmt.Errorf("sim: decode checkpoint %s: %w", path, err)
	}
	if env.Magic != checkpointMagic {
		return nil, fmt.Errorf("sim: %s is not a machine checkpoint", path)
	}
	if env.Version != checkpointVersion {
		return nil, fmt.Errorf("sim: checkpoint %s has version %d, this binary reads %d", path, env.Version, checkpointVersion)
	}
	return RestoreMachine(env.State)
}
