package sim

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"mct/internal/config"
	"mct/internal/trace"
)

// runWindow drives n accesses and returns the window metrics (the full
// observable surface of a machine run).
func runWindow(m *Machine, n int) Metrics {
	return m.RunAccesses(n)
}

// TestMachineCloneEquivalence: a clone taken mid-run and a fresh machine
// replayed to the same point produce byte-identical metrics for the next
// window — the central acceptance criterion of the snapshot contract.
func TestMachineCloneEquivalence(t *testing.T) {
	opt := quickOptions()
	build := func() *Machine {
		m, err := NewMachine(mustSpec(t, "ocean"), config.StaticBaseline(), opt)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}

	a := build()
	runWindow(a, 30_000) // advance mid-run

	cl := a.Clone()

	b := build() // fresh replay to the same point
	runWindow(b, 30_000)

	wantA := runWindow(a, 20_000)
	gotClone := runWindow(cl, 20_000)
	gotFresh := runWindow(b, 20_000)

	if !reflect.DeepEqual(wantA, gotClone) {
		t.Errorf("clone metrics diverged from parent\nparent: %+v\nclone:  %+v", wantA, gotClone)
	}
	if !reflect.DeepEqual(wantA, gotFresh) {
		t.Errorf("fresh replay diverged from original run\noriginal: %+v\nreplay:   %+v", wantA, gotFresh)
	}
}

// TestMachineCloneIsolation: running and reconfiguring a clone never
// perturbs the parent — the parent's next window is identical whether or
// not the clone was churned (checked against a second pristine clone).
func TestMachineCloneIsolation(t *testing.T) {
	m, err := NewMachine(mustSpec(t, "gups"), config.StaticBaseline(), quickOptions())
	if err != nil {
		t.Fatal(err)
	}
	runWindow(m, 25_000)

	ref := m.Clone() // pristine twin of the parent's state
	churn := m.Clone()
	if err := churn.SetConfig(config.Default()); err != nil {
		t.Fatal(err)
	}
	runWindow(churn, 40_000)

	want := runWindow(ref, 15_000)
	got := runWindow(m, 15_000)
	if !reflect.DeepEqual(want, got) {
		t.Errorf("clone activity perturbed the parent\nwant: %+v\ngot:  %+v", want, got)
	}
}

// TestMultiMachineCloneEquivalence mirrors the single-core contract for the
// shared-LLC multi-program machine.
func TestMultiMachineCloneEquivalence(t *testing.T) {
	specs, err := trace.MixByName(trace.MixNames()[0])
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultMultiOptions()
	opt.Seed = 3
	m, err := NewMultiMachine(specs, config.StaticBaseline(), opt)
	if err != nil {
		t.Fatal(err)
	}
	m.Warmup(20_000)

	cl := m.Clone()
	want := m.RunInstructions(200_000)
	got := cl.RunInstructions(200_000)
	if !reflect.DeepEqual(want, got) {
		t.Errorf("multi-machine clone diverged\nparent: %+v\nclone:  %+v", want, got)
	}
}

// TestMultiMachineCloneIsolation: churning a multi-machine clone leaves the
// parent identical to a pristine twin.
func TestMultiMachineCloneIsolation(t *testing.T) {
	specs, err := trace.MixByName(trace.MixNames()[0])
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultMultiOptions()
	opt.Seed = 4
	m, err := NewMultiMachine(specs, config.StaticBaseline(), opt)
	if err != nil {
		t.Fatal(err)
	}
	m.Warmup(15_000)

	ref := m.Clone()
	churn := m.Clone()
	churn.RunInstructions(300_000)

	want := ref.RunInstructions(150_000)
	got := m.RunInstructions(150_000)
	if !reflect.DeepEqual(want, got) {
		t.Errorf("clone activity perturbed the multi-machine parent\nwant: %+v\ngot:  %+v", want, got)
	}
}

// TestMachineSnapshotRoundTrip: RestoreMachine(m.Snapshot()) continues the
// identical simulation.
func TestMachineSnapshotRoundTrip(t *testing.T) {
	m, err := NewMachine(mustSpec(t, "leslie3d"), config.StaticBaseline(), quickOptions())
	if err != nil {
		t.Fatal(err)
	}
	runWindow(m, 30_000)

	r, err := RestoreMachine(m.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	want := runWindow(m, 20_000)
	got := runWindow(r, 20_000)
	if !reflect.DeepEqual(want, got) {
		t.Errorf("snapshot round trip diverged\noriginal: %+v\nrestored: %+v", want, got)
	}
}

// TestCheckpointSaveLoad: the on-disk gob round trip preserves the exact
// simulation, and the loader rejects garbage and wrong versions.
func TestCheckpointSaveLoad(t *testing.T) {
	m, err := NewMachine(mustSpec(t, "ocean"), config.StaticBaseline(), quickOptions())
	if err != nil {
		t.Fatal(err)
	}
	runWindow(m, 30_000)

	dir := t.TempDir()
	path := filepath.Join(dir, "nested", "ckpt.gob")
	if err := SaveCheckpoint(path, m); err != nil {
		t.Fatal(err)
	}
	r, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if r.Instructions() != m.Instructions() || r.Config() != m.Config() {
		t.Fatalf("loaded machine out of sync: %d insts vs %d", r.Instructions(), m.Instructions())
	}
	want := runWindow(m, 20_000)
	got := runWindow(r, 20_000)
	if !reflect.DeepEqual(want, got) {
		t.Errorf("checkpoint round trip diverged\noriginal: %+v\nloaded:   %+v", want, got)
	}

	if _, err := LoadCheckpoint(filepath.Join(dir, "missing.gob")); err == nil {
		t.Error("missing checkpoint loaded")
	}
	garbage := filepath.Join(dir, "garbage.gob")
	if err := os.WriteFile(garbage, []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(garbage); err == nil {
		t.Error("garbage checkpoint loaded")
	}
}

// TestPreparedWarmColdEquivalence: the warm-clone fast path and the
// cold-rebuild reference path agree exactly for a spread of configurations
// — the acceptance criterion of the warm-start sweep refactor.
func TestPreparedWarmColdEquivalence(t *testing.T) {
	p, err := Prepare("lbm", 20_000, 6_000, quickOptions())
	if err != nil {
		t.Fatal(err)
	}
	space := config.NewSpace(config.SpaceOptions{IncludeWearQuota: true, WearQuotaTarget: 8})
	cfgs := []config.Config{config.Default(), config.StaticBaseline()}
	for i := 0; i < space.Len(); i += space.Len() / 8 {
		cfgs = append(cfgs, space.At(i))
	}
	for _, cfg := range cfgs {
		warm, err := p.Evaluate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cold, err := p.EvaluateCold(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(warm, cold) {
			t.Errorf("config %+v: warm-clone and cold-rebuild metrics differ\nwarm: %+v\ncold: %+v", cfg, warm, cold)
		}
	}
}

func mustSpec(t *testing.T, name string) trace.Spec {
	t.Helper()
	spec, err := trace.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}
