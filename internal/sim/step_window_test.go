package sim

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"mct/internal/config"
)

// TestStepInstructionsChunkEquivalence is the determinism contract behind
// resumable evaluate jobs: splitting an instruction budget into arbitrary
// StepInstructions chunks must produce exactly the metrics of one straight
// RunInstructions over the same budget — stepping is per-access against an
// instruction target, so chunk boundaries cannot change the access stream.
func TestStepInstructionsChunkEquivalence(t *testing.T) {
	const total = 400_000
	ref := mustMachine(t, "lbm", config.StaticBaseline())
	ref.Warmup(DefaultWarmupAccesses)
	want := ref.RunInstructions(total)

	for _, chunks := range [][]uint64{
		{total},
		{100_000, 100_000, 100_000, 100_000},
		{1, 399_999},
		{123_457, 123_457, 123_457, 123_457}, // overshoots total; loop must clamp
	} {
		m := mustMachine(t, "lbm", config.StaticBaseline())
		m.Warmup(DefaultWarmupAccesses)
		for _, c := range chunks {
			if done := m.WindowInstructions(); done >= total {
				break
			} else if rem := total - done; c > rem {
				c = rem
			}
			m.StepInstructions(c)
		}
		got := m.WindowMetrics()
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("chunks %v drifted from straight run:\n got %+v\nwant %+v", chunks, got.Vector(), want.Vector())
		}
	}
}

// TestStepInstructionsCheckpointEquivalence extends the chunk contract across
// a save/load cycle between every chunk — the daemon's kill -9 scenario. The
// window-start markers ride the checkpoint, so the resumed machine's final
// WindowMetrics still equals the uninterrupted run's.
func TestStepInstructionsCheckpointEquivalence(t *testing.T) {
	const total = 300_000
	ref := mustMachine(t, "stream", config.StaticBaseline())
	ref.Warmup(DefaultWarmupAccesses)
	want := ref.RunInstructions(total)

	path := filepath.Join(t.TempDir(), "machine.ckpt")
	m := mustMachine(t, "stream", config.StaticBaseline())
	m.Warmup(DefaultWarmupAccesses)
	for m.WindowInstructions() < total {
		c := uint64(75_000)
		if rem := total - m.WindowInstructions(); c > rem {
			c = rem
		}
		m.StepInstructions(c)
		if err := SaveCheckpoint(path, m); err != nil {
			t.Fatal(err)
		}
		// Resume from disk as a fresh process would, discarding the live
		// machine entirely.
		var err error
		m, err = LoadCheckpoint(path)
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := m.WindowMetrics(); !reflect.DeepEqual(got, want) {
		t.Fatalf("checkpointed chunks drifted from straight run:\n got %+v\nwant %+v", got.Vector(), want.Vector())
	}
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
}

// TestPreparedFromMachineEquivalence: rebuilding a Prepared from a
// checkpointed warm machine must evaluate configurations identically to the
// original Prepare — the contract behind resumable sweep jobs.
func TestPreparedFromMachineEquivalence(t *testing.T) {
	const accesses = 4000
	orig, err := Prepare("lbm", 0, accesses, quickOptions())
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "machine.ckpt")
	if err := orig.Checkpoint(path); err != nil {
		t.Fatal(err)
	}
	m, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := PreparedFromMachine(m, 0, accesses)
	if err != nil {
		t.Fatal(err)
	}

	for _, cfg := range []config.Config{config.StaticBaseline(), config.Default()} {
		a, err := orig.Evaluate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := resumed.Evaluate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("resumed Prepared drifted for %+v:\n got %+v\nwant %+v", cfg, b.Vector(), a.Vector())
		}
	}
}
