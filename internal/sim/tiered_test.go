// Tiered-machine satellites of the snapshot/determinism contracts: the
// hybrid DRAM–NVM pipeline must honour every guarantee the stock two-tier
// pipeline does — clone isolation, snapshot/checkpoint round trips at
// arbitrary (mid-burst) cut points, warm-vs-cold sweep equivalence — plus
// the DRAM-specific window accounting.
package sim

import (
	"reflect"
	"testing"

	"mct/internal/config"
	"mct/internal/hierarchy"
	"mct/internal/trace"
)

// tieredOptions enables the DRAM cache tier at an aggressive promotion
// threshold, so short test runs still exercise fills, absorptions and
// evictions.
func tieredOptions() Options {
	o := DefaultOptions()
	o.Tiers = config.TierConfig{DRAMCache: true, DRAMPromoteThreshold: 1}
	return o
}

func mustTiered(t *testing.T, bench string, cfg config.Config) *Machine {
	t.Helper()
	m, err := NewMachine(mustSpec(t, bench), cfg, tieredOptions())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestTieredPipelineWiring: the tier pipeline of a hybrid machine is
// llc→dram→nvm and the memory seam points at the DRAM tier; the stock
// machine stays llc→nvm with the seam on the controller.
func TestTieredPipelineWiring(t *testing.T) {
	m := mustTiered(t, "lbm", config.Default())
	names := []string{}
	for _, tier := range m.Tiers() {
		names = append(names, tier.Name())
	}
	if want := []string{"llc", "dram", "nvm"}; !reflect.DeepEqual(names, want) {
		t.Errorf("hybrid tier pipeline = %v, want %v", names, want)
	}
	if m.mem != hierarchy.Mem(m.dram) {
		t.Error("hybrid memory seam does not point at the DRAM tier")
	}

	plain := mustMachine(t, "lbm", config.Default())
	names = names[:0]
	for _, tier := range plain.Tiers() {
		names = append(names, tier.Name())
	}
	if want := []string{"llc", "nvm"}; !reflect.DeepEqual(names, want) {
		t.Errorf("stock tier pipeline = %v, want %v", names, want)
	}
	if plain.mem != hierarchy.Mem(plain.ctrl) {
		t.Error("stock memory seam does not point at the NVM controller")
	}
}

// TestTieredCloneNilsScratchBuffer: Clone on a tiered machine drops the
// scratch batch buffer (per-machine, lazily rebuilt) and deep-copies the
// DRAM tier wired onto the clone's own controller.
func TestTieredCloneNilsScratchBuffer(t *testing.T) {
	m := mustTiered(t, "ocean", config.StaticBaseline())
	m.RunAccesses(10_000) // allocates the parent's batch buffer
	if m.batch == nil {
		t.Fatal("setup: parent machine has no batch buffer")
	}

	cl := m.Clone()
	if cl.batch != nil {
		t.Error("clone shares or carries a scratch batch buffer")
	}
	if cl.dram == nil || cl.dram == m.dram {
		t.Error("clone does not deep-copy the DRAM tier")
	}
	if cl.mem != hierarchy.Mem(cl.dram) {
		t.Error("clone's memory seam not rewired to its own DRAM tier")
	}
	if cl.dram.Next() != hierarchy.Mem(cl.ctrl) {
		t.Error("clone's DRAM tier not rewired onto the clone's controller")
	}
}

// TestTieredCloneEquivalence: parent, mid-run clone, and fresh replay all
// produce byte-identical next-window metrics on the hybrid pipeline.
func TestTieredCloneEquivalence(t *testing.T) {
	a := mustTiered(t, "ocean", config.StaticBaseline())
	a.RunAccesses(30_000)

	cl := a.Clone()
	b := mustTiered(t, "ocean", config.StaticBaseline())
	b.RunAccesses(30_000)

	want := a.RunAccesses(20_000)
	gotClone := cl.RunAccesses(20_000)
	gotFresh := b.RunAccesses(20_000)
	if !reflect.DeepEqual(want, gotClone) {
		t.Errorf("tiered clone diverged\nparent: %+v\nclone:  %+v", want, gotClone)
	}
	if !reflect.DeepEqual(want, gotFresh) {
		t.Errorf("tiered fresh replay diverged\noriginal: %+v\nreplay:   %+v", want, gotFresh)
	}
}

// TestTieredCloneIsolation: churning a tiered clone (including its DRAM
// dirty set, via drain) never perturbs the parent.
func TestTieredCloneIsolation(t *testing.T) {
	m := mustTiered(t, "lbm", config.StaticBaseline())
	m.RunAccesses(25_000)

	ref := m.Clone()
	churn := m.Clone()
	if err := churn.SetConfig(config.Default()); err != nil {
		t.Fatal(err)
	}
	churn.RunAccesses(40_000)
	churn.finishRun() // flush the clone's DRAM dirty set

	want := ref.RunAccesses(15_000)
	got := m.RunAccesses(15_000)
	if !reflect.DeepEqual(want, got) {
		t.Errorf("tiered clone activity perturbed the parent\nwant: %+v\ngot:  %+v", want, got)
	}
}

// TestTieredSnapshotRoundTripCutPoints: RestoreMachine(m.Snapshot())
// continues the identical simulation from arbitrary cut points — including
// cuts that land mid-batch/mid-burst (not aligned to StepBatchSize or any
// window boundary), where the DRAM dirty set and page-counter epochs are
// in full flight.
func TestTieredSnapshotRoundTripCutPoints(t *testing.T) {
	for _, cut := range []int{1, 777, StepBatchSize, 3*StepBatchSize + 1234, 30_000} {
		m := mustTiered(t, "leslie3d", config.StaticBaseline())
		m.RunAccesses(cut)

		r, err := RestoreMachine(m.Snapshot())
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		want := m.RunAccesses(20_000)
		got := r.RunAccesses(20_000)
		if !reflect.DeepEqual(want, got) {
			t.Errorf("cut %d: tiered snapshot round trip diverged\noriginal: %+v\nrestored: %+v", cut, want, got)
		}
	}
}

// TestTieredCheckpointRoundTrip: the on-disk gob checkpoint carries the
// DRAM tier state and continues the identical simulation.
func TestTieredCheckpointRoundTrip(t *testing.T) {
	m := mustTiered(t, "ocean", config.StaticBaseline())
	m.RunAccesses(30_000)

	path := t.TempDir() + "/tiered.ckpt"
	if err := SaveCheckpoint(path, m); err != nil {
		t.Fatal(err)
	}
	r, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if r.DRAM() == nil {
		t.Fatal("loaded machine lost its DRAM tier")
	}
	want := m.RunAccesses(20_000)
	got := r.RunAccesses(20_000)
	if !reflect.DeepEqual(want, got) {
		t.Errorf("tiered checkpoint round trip diverged\noriginal: %+v\nloaded:   %+v", want, got)
	}
}

// TestRestoreRejectsTierMismatch: a snapshot whose options and tier state
// disagree (hybrid options without DRAM state, or DRAM state on NVM-only
// options) is rejected instead of silently building the wrong hierarchy.
func TestRestoreRejectsTierMismatch(t *testing.T) {
	m := mustMachine(t, "lbm", config.Default())
	m.RunAccesses(5_000)
	st := m.Snapshot()
	st.Options.Tiers = config.TierConfig{DRAMCache: true}
	if _, err := RestoreMachine(st); err == nil {
		t.Error("hybrid options with no DRAM state accepted")
	}

	tm := mustTiered(t, "lbm", config.Default())
	tm.RunAccesses(5_000)
	st = tm.Snapshot()
	st.Options.Tiers = config.TierConfig{}
	if _, err := RestoreMachine(st); err == nil {
		t.Error("DRAM state with NVM-only options accepted")
	}
}

// TestTieredWarmColdEquivalence: the warm-clone sweep fast path and the
// cold-rebuild reference agree exactly on the hybrid pipeline — including
// the warmup settle of the DRAM dirty set, which both paths must apply
// identically.
func TestTieredWarmColdEquivalence(t *testing.T) {
	p, err := Prepare("lbm", 20_000, 6_000, tieredOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []config.Config{config.Default(), config.StaticBaseline()} {
		warm, err := p.Evaluate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cold, err := p.EvaluateCold(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(warm, cold) {
			t.Errorf("config %+v: tiered warm/cold metrics differ\nwarm: %+v\ncold: %+v", cfg, warm, cold)
		}
	}
}

// TestTieredHitRateAcrossWindows: per-window DRAM metrics are deltas of
// the cumulative tier stats — the second window's hit rate reflects only
// that window's traffic, not the cumulative history.
func TestTieredHitRateAcrossWindows(t *testing.T) {
	m := mustTiered(t, "leslie3d", config.StaticBaseline())
	m.Warmup(30_000)

	before := m.DRAM().Stats()
	w1 := m.RunAccesses(25_000)
	mid := m.DRAM().Stats()
	w2 := m.RunAccesses(25_000)
	after := m.DRAM().Stats()

	d1 := diffDRAM(before, mid)
	d2 := diffDRAM(mid, after)
	if w1.DRAMHits != d1.Hits || w1.DRAMMisses != d1.Misses {
		t.Errorf("window 1 DRAM counters %d/%d, want deltas %d/%d", w1.DRAMHits, w1.DRAMMisses, d1.Hits, d1.Misses)
	}
	if w2.DRAMHits != d2.Hits || w2.DRAMMisses != d2.Misses {
		t.Errorf("window 2 DRAM counters %d/%d, want deltas %d/%d", w2.DRAMHits, w2.DRAMMisses, d2.Hits, d2.Misses)
	}
	if w1.DRAMHitRate != d1.HitRate() {
		t.Errorf("window 1 hit rate %v, want windowed %v", w1.DRAMHitRate, d1.HitRate())
	}
	if w2.DRAMHitRate != d2.HitRate() {
		t.Errorf("window 2 hit rate %v, want windowed %v (cumulative would be %v)",
			w2.DRAMHitRate, d2.HitRate(), after.HitRate())
	}
	if d2.Hits+d2.Misses == 0 {
		t.Error("window 2 saw no DRAM traffic; the test exercises nothing")
	}
}

// TestTieredDeterminism: two identical tiered machines produce identical
// metrics — the hybrid pipeline stays schedule-free and reproducible.
func TestTieredDeterminism(t *testing.T) {
	a := mustTiered(t, "stream", config.Default())
	b := mustTiered(t, "stream", config.Default())
	wa := a.RunAccesses(40_000)
	wb := b.RunAccesses(40_000)
	if !reflect.DeepEqual(wa, wb) {
		t.Errorf("tiered runs diverged\na: %+v\nb: %+v", wa, wb)
	}
	if wa.DRAMHits+wa.DRAMMisses == 0 {
		t.Error("tiered run saw no DRAM traffic")
	}
}

// TestTieredMultiMachineClone: the multi-core hybrid machine honours the
// clone contract too.
func TestTieredMultiMachineClone(t *testing.T) {
	specs, err := trace.MixByName(trace.MixNames()[0])
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultMultiOptions()
	opt.Seed = 5
	opt.Tiers = config.TierConfig{DRAMCache: true, DRAMPromoteThreshold: 1}
	m, err := NewMultiMachine(specs, config.StaticBaseline(), opt)
	if err != nil {
		t.Fatal(err)
	}
	m.Warmup(20_000)

	cl := m.Clone()
	if cl.dram == nil || cl.dram == m.dram {
		t.Fatal("multi-machine clone does not deep-copy the DRAM tier")
	}
	want := m.RunInstructions(200_000)
	got := cl.RunInstructions(200_000)
	if !reflect.DeepEqual(want, got) {
		t.Errorf("tiered multi-machine clone diverged\nparent: %+v\nclone:  %+v", want, got)
	}
	if want.DRAMHits+want.DRAMMisses == 0 {
		t.Error("tiered multi-machine run saw no DRAM traffic")
	}
}
