// Package stats provides the statistical primitives used across MCT:
// summary statistics, Welch's t-test (the phase detector's core), the
// coefficient of determination (the paper's accuracy metric, Eq. 3), and
// geometric means (used for cross-benchmark aggregation).
package stats

import (
	"math"

	"mct/internal/floats"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (0 for fewer than two
// samples).
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Summary holds streaming first- and second-moment statistics.
// The zero value is an empty summary ready to use.
type Summary struct {
	n    int
	mean float64
	m2   float64 // sum of squared deviations (Welford)
}

// Add folds x into the summary.
func (s *Summary) Add(x float64) {
	s.n++
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// N returns the number of observations.
func (s *Summary) N() int { return s.n }

// Mean returns the running mean.
func (s *Summary) Mean() float64 { return s.mean }

// Variance returns the unbiased running variance.
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the unbiased running standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Reset returns the summary to its empty state.
func (s *Summary) Reset() { *s = Summary{} }

// TScore returns the absolute Welch's t statistic for the difference of the
// means of two samples given their means, variances and sizes. It returns 0
// when either sample is too small or both variances vanish. This is the
// "two-sided Student's t-test" score of §5.1: larger scores indicate higher
// confidence that the two windows have different mean memory workload.
func TScore(mean1, var1 float64, n1 int, mean2, var2 float64, n2 int) float64 {
	if n1 < 2 || n2 < 2 {
		return 0
	}
	se := var1/float64(n1) + var2/float64(n2)
	if se <= 0 {
		if floats.Eq(mean1, mean2) {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(mean1-mean2) / math.Sqrt(se)
}

// R2 returns the coefficient-of-determination accuracy metric from Eq. 3 of
// the paper: max(0, 1 - ‖pred-true‖² / ‖true-mean(true)‖²). Slices must have
// equal length; it returns 0 for fewer than two observations or when the
// true data has no variance and the prediction is off.
func R2(pred, truth []float64) float64 {
	if len(pred) != len(truth) || len(truth) < 2 {
		return 0
	}
	m := Mean(truth)
	var ssRes, ssTot float64
	for i, t := range truth {
		r := t - pred[i]
		ssRes += r * r
		d := t - m
		ssTot += d * d
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return 0
	}
	r2 := 1 - ssRes/ssTot
	if r2 < 0 {
		return 0
	}
	return r2
}

// GeoMean returns the geometric mean of xs. All values must be positive;
// non-positive values contribute as a tiny epsilon so a single zero cannot
// produce NaN in reports.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			x = 1e-12
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

// MinMax returns the minimum and maximum of xs. It panics on an empty slice.
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		panic("stats: MinMax of empty slice")
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// ArgMax returns the index of the largest element of xs, or -1 if empty.
func ArgMax(xs []float64) int {
	best := -1
	bestV := math.Inf(-1)
	for i, x := range xs {
		if x > bestV {
			best, bestV = i, x
		}
	}
	return best
}

// MeanAbsErr returns the mean absolute error between pred and truth.
// Slices must have equal length; it returns 0 for empty input.
func MeanAbsErr(pred, truth []float64) float64 {
	if len(pred) != len(truth) || len(pred) == 0 {
		return 0
	}
	var s float64
	for i, p := range pred {
		s += math.Abs(p - truth[i])
	}
	return s / float64(len(pred))
}
