package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Fatalf("Mean = %v, want 5", got)
	}
	if got := Variance(xs); math.Abs(got-32.0/7) > 1e-12 {
		t.Fatalf("Variance = %v, want %v", got, 32.0/7)
	}
	if Mean(nil) != 0 || Variance(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Fatal("degenerate inputs must return 0")
	}
}

// Property: the streaming Summary matches the batch statistics.
func TestSummaryMatchesBatch(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(100)
		xs := make([]float64, n)
		var s Summary
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
			s.Add(xs[i])
		}
		return s.N() == n &&
			math.Abs(s.Mean()-Mean(xs)) < 1e-9 &&
			math.Abs(s.Variance()-Variance(xs)) < 1e-6 &&
			math.Abs(s.StdDev()-StdDev(xs)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSummaryReset(t *testing.T) {
	var s Summary
	s.Add(1)
	s.Add(2)
	s.Reset()
	if s.N() != 0 || s.Mean() != 0 || s.Variance() != 0 {
		t.Fatal("Reset must clear the summary")
	}
}

func TestTScore(t *testing.T) {
	// Identical samples: score 0.
	if got := TScore(5, 1, 10, 5, 1, 10); got != 0 {
		t.Fatalf("identical means score = %v, want 0", got)
	}
	// Separated means with small variance: large score.
	if got := TScore(100, 1, 50, 5, 1, 50); got < 50 {
		t.Fatalf("separated means score = %v, want large", got)
	}
	// Symmetry (absolute value).
	a := TScore(1, 2, 30, 4, 3, 40)
	b := TScore(4, 3, 40, 1, 2, 30)
	if math.Abs(a-b) > 1e-12 {
		t.Fatalf("t-score not symmetric: %v vs %v", a, b)
	}
	// Too-small samples: 0.
	if TScore(1, 1, 1, 2, 1, 50) != 0 {
		t.Fatal("n<2 must score 0")
	}
	// Zero variance, different means: +Inf.
	if !math.IsInf(TScore(1, 0, 10, 2, 0, 10), 1) {
		t.Fatal("zero variance different means must be +Inf")
	}
}

func TestR2(t *testing.T) {
	truth := []float64{1, 2, 3, 4, 5}
	if got := R2(truth, truth); got != 1 {
		t.Fatalf("perfect prediction R² = %v, want 1", got)
	}
	mean := []float64{3, 3, 3, 3, 3}
	if got := R2(mean, truth); got != 0 {
		t.Fatalf("mean prediction R² = %v, want 0", got)
	}
	// Worse than the mean clamps to 0 (Eq. 3 takes max with 0).
	bad := []float64{100, -50, 80, -10, 60}
	if got := R2(bad, truth); got != 0 {
		t.Fatalf("bad prediction R² = %v, want clamp to 0", got)
	}
	// Mismatched lengths or tiny inputs → 0.
	if R2([]float64{1}, []float64{1, 2}) != 0 || R2([]float64{1}, []float64{1}) != 0 {
		t.Fatal("degenerate inputs must return 0")
	}
	// Constant truth: 1 if matched, 0 otherwise.
	if R2([]float64{2, 2}, []float64{2, 2}) != 1 || R2([]float64{2, 3}, []float64{2, 2}) != 0 {
		t.Fatal("constant-truth handling wrong")
	}
}

// Property: R² is always within [0,1].
func TestR2Bounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(50)
		pred := make([]float64, n)
		truth := make([]float64, n)
		for i := range pred {
			pred[i] = rng.NormFloat64() * 10
			truth[i] = rng.NormFloat64() * 10
		}
		r := R2(pred, truth)
		return r >= 0 && r <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{2, 8}); math.Abs(got-4) > 1e-12 {
		t.Fatalf("GeoMean(2,8) = %v, want 4", got)
	}
	if GeoMean(nil) != 0 {
		t.Fatal("empty geomean must be 0")
	}
	// Non-positive values degrade gracefully (no NaN).
	if v := GeoMean([]float64{1, 0}); math.IsNaN(v) {
		t.Fatal("geomean with zero must not be NaN")
	}
}

func TestMinMaxArgMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 2})
	if lo != -1 || hi != 7 {
		t.Fatalf("MinMax = %v,%v", lo, hi)
	}
	if ArgMax([]float64{3, -1, 7, 2}) != 2 {
		t.Fatal("ArgMax wrong")
	}
	if ArgMax(nil) != -1 {
		t.Fatal("ArgMax(nil) must be -1")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MinMax of empty must panic")
		}
	}()
	MinMax(nil)
}

func TestMeanAbsErr(t *testing.T) {
	if got := MeanAbsErr([]float64{1, 2}, []float64{2, 4}); got != 1.5 {
		t.Fatalf("MeanAbsErr = %v, want 1.5", got)
	}
	if MeanAbsErr(nil, nil) != 0 || MeanAbsErr([]float64{1}, []float64{1, 2}) != 0 {
		t.Fatal("degenerate inputs must return 0")
	}
}
