package trace

// Footprint size helpers.
const (
	kib = 1 << 10
	mib = 1 << 20
)

// registry holds the synthetic stand-ins for the paper's ten workloads
// (§6.1): seven memory-intensive SPEC CPU2006 benchmarks, ocean from
// SPLASH-2, and the gups / stream microbenchmarks. Parameters are tuned for
// the cross-application diversity MCT exploits: write intensity, read/write
// mix, locality, burstiness, and phase structure all differ.
var registry = map[string]Spec{
	// lbm: lattice-Boltzmann fluid dynamics — streaming read-modify-write
	// sweeps over a large grid; the most write-intensive SPEC workload and
	// the paper's flagship example (35% MCT gain over static).
	"lbm": {Name: "lbm", Phases: []Phase{{
		Insts: 10_000_000, MPKI: 28, WriteFrac: 0.46,
		HotFrac: 0.05, HotBytes: 512 * kib,
		ColdBytes: 512 * mib, Pattern: Sequential,
		BurstLen: 4000, IdleMul: 3,
	}}},

	// leslie3d: computational fluid dynamics — moderate intensity, mixed
	// locality.
	"leslie3d": {Name: "leslie3d", Phases: []Phase{{
		Insts: 10_000_000, MPKI: 16, WriteFrac: 0.36,
		HotFrac: 0.30, HotBytes: 1 * mib,
		ColdBytes: 256 * mib, Pattern: Sequential,
		BurstLen: 2500, IdleMul: 2.5,
	}}},

	// zeusmp: astrophysical CFD — good cache locality; the one workload
	// whose default configuration already satisfies an 8-year lifetime in
	// the paper (Figure 7).
	"zeusmp": {Name: "zeusmp", Phases: []Phase{{
		Insts: 10_000_000, MPKI: 3, WriteFrac: 0.24,
		HotFrac: 0.90, HotBytes: 1 * mib,
		ColdBytes: 128 * mib, Pattern: Strided, Stride: 128,
	}}},

	// GemsFDTD: finite-difference time-domain electromagnetics — strided
	// sweeps over field arrays.
	"GemsFDTD": {Name: "GemsFDTD", Phases: []Phase{{
		Insts: 10_000_000, MPKI: 18, WriteFrac: 0.31,
		HotFrac: 0.15, HotBytes: 1 * mib,
		ColdBytes: 384 * mib, Pattern: Strided, Stride: 256,
		BurstLen: 3000, IdleMul: 2,
	}}},

	// milc: lattice QCD — irregular gather/scatter over a large lattice.
	"milc": {Name: "milc", Phases: []Phase{{
		Insts: 10_000_000, MPKI: 21, WriteFrac: 0.34,
		HotFrac: 0.10, HotBytes: 512 * kib,
		ColdBytes: 512 * mib, Pattern: Random,
		BurstLen: 2000, IdleMul: 2,
	}}},

	// bwaves: blast-wave CFD — read-dominated sequential sweeps.
	"bwaves": {Name: "bwaves", Phases: []Phase{{
		Insts: 10_000_000, MPKI: 22, WriteFrac: 0.20,
		HotFrac: 0.10, HotBytes: 768 * kib,
		ColdBytes: 512 * mib, Pattern: Sequential,
	}}},

	// libquantum: quantum-computer simulation — strongly bursty streaming
	// over a modest footprint (§5.2 cites it as memory-bursty).
	"libquantum": {Name: "libquantum", Phases: []Phase{{
		Insts: 10_000_000, MPKI: 24, WriteFrac: 0.26,
		HotFrac:   0.0,
		ColdBytes: 64 * mib, Pattern: Sequential,
		BurstLen: 6000, IdleMul: 5,
	}}},

	// ocean: SPLASH-2 ocean-current simulation — the paper's coarse-phase
	// example (Figure 6): alternating stencil sweeps, relaxation steps, and
	// compute-dominated spans with very different memory behaviour.
	"ocean": {Name: "ocean", Phases: []Phase{
		{ // stencil sweep: intense, write-heavy, streaming
			Insts: 2_500_000, MPKI: 32, WriteFrac: 0.42,
			ColdBytes: 128 * mib, Pattern: Sequential,
			BurstLen: 3000, IdleMul: 2,
		},
		{ // compute-dominated span: sparse traffic with locality
			Insts: 2_500_000, MPKI: 4, WriteFrac: 0.22,
			HotFrac: 0.60, HotBytes: 1 * mib,
			ColdBytes: 64 * mib, Pattern: Strided, Stride: 192,
		},
		{ // red-black relaxation: strided, moderately write-heavy
			Insts: 2_500_000, MPKI: 22, WriteFrac: 0.36,
			ColdBytes: 96 * mib, Pattern: Strided, Stride: 128,
		},
		{ // boundary exchange: irregular, read-leaning
			Insts: 2_500_000, MPKI: 11, WriteFrac: 0.28,
			HotFrac: 0.25, HotBytes: 512 * kib,
			ColdBytes: 128 * mib, Pattern: Random,
		},
	}},

	// gups: giga-updates-per-second microbenchmark — uniform random
	// read-modify-write over a huge table (worst-case locality).
	"gups": {Name: "gups", Phases: []Phase{{
		Insts: 10_000_000, MPKI: 36, WriteFrac: 0.50,
		ColdBytes: 1024 * mib, Pattern: Random,
	}}},

	// stream: STREAM triad-style copy/scale/add — perfectly regular
	// sequential traffic with a fixed store share.
	"stream": {Name: "stream", Phases: []Phase{{
		Insts: 10_000_000, MPKI: 44, WriteFrac: 0.34,
		ColdBytes: 256 * mib, Pattern: Sequential,
	}}},
}

// mixes are the multi-program workloads of Table 11.
var mixes = map[string][]string{
	"mix1": {"lbm", "libquantum", "stream", "ocean"},
	"mix2": {"leslie3d", "bwaves", "stream", "ocean"},
	"mix3": {"GemsFDTD", "milc", "zeusmp", "bwaves"},
	"mix4": {"lbm", "leslie3d", "zeusmp", "GemsFDTD"},
	"mix5": {"GemsFDTD", "milc", "bwaves", "libquantum"},
	"mix6": {"libquantum", "bwaves", "stream", "ocean"},
}
