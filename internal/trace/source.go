// Source is the streaming half of the trace package: a pull-based access
// stream consumed batch-by-batch into caller-owned buffers. It is what lets
// the simulator run traces of billions of accesses in O(batch) memory — the
// stream is generated (or replayed) incrementally instead of materialized
// whole. Implementations: *Generator (synthetic benchmarks, infinite),
// *Replay (a materialized slice), Limit (a bounded view of any source), and
// any future streaming multi-tenant generators.
package trace

// Source is a pull-based stream of accesses.
//
// Fill writes up to len(dst) accesses into dst and returns how many it
// wrote. A return of n < len(dst) with len(dst) > 0 means the stream
// exhausted after n accesses; subsequent calls return 0. Fill must be
// batch-size invariant: splitting one stream across Fill calls of any sizes
// yields the identical access sequence. Sources are not safe for concurrent
// use.
type Source interface {
	Fill(dst []Access) int
}

var (
	_ Source = (*Generator)(nil)
	_ Source = (*Replay)(nil)
	_ Source = (*limited)(nil)
)

// Replay replays a materialized access slice as a Source. The slice is
// shared, not copied; it is read-only to the Replay.
type Replay struct {
	tr  []Access
	pos int
}

// NewReplay returns a source that yields the accesses of tr in order, then
// exhausts.
func NewReplay(tr []Access) *Replay { return &Replay{tr: tr} }

// Fill implements Source.
func (r *Replay) Fill(dst []Access) int {
	n := copy(dst, r.tr[r.pos:])
	r.pos += n
	return n
}

// Remaining returns how many accesses are left to replay.
func (r *Replay) Remaining() int { return len(r.tr) - r.pos }

// Reset rewinds the replay to the start of its slice.
func (r *Replay) Reset() { r.pos = 0 }

// limited bounds an underlying source to a fixed number of accesses.
type limited struct {
	src Source
	n   int
}

// Limit returns a view of src that exhausts after n accesses (or earlier,
// if src itself exhausts). The underlying source advances by exactly the
// accesses the view delivers, so a bounded read leaves src positioned to
// continue its stream.
func Limit(src Source, n int) Source {
	if n < 0 {
		n = 0
	}
	return &limited{src: src, n: n}
}

// Fill implements Source.
func (l *limited) Fill(dst []Access) int {
	if l.n <= 0 {
		return 0
	}
	if len(dst) > l.n {
		dst = dst[:l.n]
	}
	got := l.src.Fill(dst)
	l.n -= got
	return got
}
