package trace

import (
	"testing"

	"mct/internal/rng"
)

// TestFillBatchSizeInvariance: consuming a generator through Fill with any
// batch size — including degenerate size 1 and a size far beyond the
// consumed total — yields exactly the stream repeated Next calls produce.
// This is the contract the streaming simulator's byte-identical-output
// guarantee rests on.
func TestFillBatchSizeInvariance(t *testing.T) {
	const total = 10_000
	for _, name := range Names() {
		spec, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		ref := NewGenerator(spec, rng.NewRand(11))
		want := make([]Access, total)
		for i := range want {
			want[i] = ref.Next()
		}
		for _, batch := range []int{1, 7, 4096} {
			g := NewGenerator(spec, rng.NewRand(11))
			buf := make([]Access, batch)
			got := make([]Access, 0, total)
			for len(got) < total {
				n := batch
				if rem := total - len(got); n > rem {
					n = rem
				}
				if filled := g.Fill(buf[:n]); filled != n {
					t.Fatalf("%s: generator Fill returned %d, want %d (generators never exhaust)", name, filled, n)
				}
				got = append(got, buf[:n]...)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s: batch size %d diverged from Next at access %d: %+v vs %+v",
						name, batch, i, got[i], want[i])
				}
			}
		}
	}
}

// TestFillMatchesNextInterleaved: mixing Next and Fill calls on one
// generator still walks the single underlying stream.
func TestFillMatchesNextInterleaved(t *testing.T) {
	spec, err := ByName("ocean")
	if err != nil {
		t.Fatal(err)
	}
	ref := NewGenerator(spec, rng.NewRand(5))
	want := Collect(ref, 600)

	g := NewGenerator(spec, rng.NewRand(5))
	var got []Access
	buf := make([]Access, 64)
	for len(got) < 600 {
		got = append(got, g.Next(), g.Next(), g.Next())
		g.Fill(buf[:47])
		got = append(got, buf[:47]...)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("interleaved Next/Fill diverged at access %d: %+v vs %+v", i, got[i], want[i])
		}
	}
}

func TestReplay(t *testing.T) {
	spec, err := ByName("lbm")
	if err != nil {
		t.Fatal(err)
	}
	tr := Collect(NewGenerator(spec, rng.NewRand(3)), 100)
	r := NewReplay(tr)
	if r.Remaining() != 100 {
		t.Fatalf("fresh replay has %d remaining, want 100", r.Remaining())
	}

	buf := make([]Access, 33)
	var got []Access
	for {
		n := r.Fill(buf)
		if n == 0 {
			break
		}
		got = append(got, buf[:n]...)
	}
	if len(got) != len(tr) {
		t.Fatalf("replay yielded %d accesses, want %d", len(got), len(tr))
	}
	for i := range tr {
		if got[i] != tr[i] {
			t.Fatalf("replay diverged at %d", i)
		}
	}
	if r.Remaining() != 0 {
		t.Fatalf("exhausted replay has %d remaining", r.Remaining())
	}
	if n := r.Fill(buf); n != 0 {
		t.Fatalf("exhausted replay filled %d", n)
	}
	r.Reset()
	if r.Remaining() != 100 {
		t.Fatalf("reset replay has %d remaining, want 100", r.Remaining())
	}
	if n := r.Fill(buf); n != 33 || buf[0] != tr[0] {
		t.Fatalf("reset replay restarts wrong: n=%d first=%+v", n, buf[0])
	}
}

// TestLimit: a Limit view exhausts after exactly n accesses and leaves the
// underlying source positioned to continue.
func TestLimit(t *testing.T) {
	spec, err := ByName("gups")
	if err != nil {
		t.Fatal(err)
	}
	ref := NewGenerator(spec, rng.NewRand(9))
	want := Collect(ref, 150)

	g := NewGenerator(spec, rng.NewRand(9))
	lim := Limit(g, 100)
	buf := make([]Access, 64)
	var got []Access
	for {
		n := lim.Fill(buf)
		if n == 0 {
			break
		}
		got = append(got, buf[:n]...)
	}
	if len(got) != 100 {
		t.Fatalf("Limit(100) yielded %d accesses", len(got))
	}
	// The generator continues where the bounded view stopped.
	g.Fill(buf[:50])
	got = append(got, buf[:50]...)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("stream diverged at %d after a bounded read", i)
		}
	}

	if n := Limit(g, -3).Fill(buf); n != 0 {
		t.Fatalf("negative limit filled %d", n)
	}
	// Limit over an exhausting source stops at the source's end.
	short := Limit(NewReplay(want[:10]), 100)
	if n := short.Fill(buf); n != 10 {
		t.Fatalf("limit over a 10-access replay filled %d", n)
	}
}
