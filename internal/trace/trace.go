// Package trace generates deterministic synthetic memory-access traces that
// stand in for the paper's SPEC CPU2006 / SPLASH-2 / microbenchmark
// workloads (§6.1). A trace is the post-L2 access stream seen by the last
// level cache: each event carries the number of instructions executed since
// the previous access, a byte address, and a load/store flag.
//
// Each benchmark is described by a Spec — a cyclic schedule of phases, each
// with its own access intensity (MPKI), write fraction, locality structure
// (hot-region fraction and sizes), access pattern, and burst shape. The
// generators are seeded and fully deterministic, so every NVM configuration
// of a benchmark replays the identical trace, as in trace-driven simulation.
package trace

import (
	"fmt"
	"sort"

	"mct/internal/rng"
)

// LineBytes is the cache-line size; all addresses are line-aligned when
// consumed by the cache model.
const LineBytes = 64

// Access is one LLC-level memory access.
type Access struct {
	// InstGap is the number of instructions executed since the previous
	// access (≥1).
	InstGap uint32
	// Addr is the byte address of the access.
	Addr uint64
	// Write marks a store (which dirties the line in the LLC).
	Write bool
}

// PatternKind selects how cold-region addresses advance.
type PatternKind uint8

const (
	// Sequential walks the cold region line by line (streaming).
	Sequential PatternKind = iota
	// Strided walks the cold region with a fixed stride.
	Strided
	// Random draws uniform addresses from the cold region.
	Random
)

// String implements fmt.Stringer.
func (p PatternKind) String() string {
	switch p {
	case Sequential:
		return "sequential"
	case Strided:
		return "strided"
	case Random:
		return "random"
	default:
		return fmt.Sprintf("PatternKind(%d)", uint8(p))
	}
}

// Phase is one segment of a benchmark's cyclic phase schedule.
type Phase struct {
	// Insts is the instruction length of the phase within one cycle of the
	// schedule.
	Insts uint64
	// MPKI is the mean number of LLC accesses per 1000 instructions.
	MPKI float64
	// WriteFrac is the store fraction of accesses.
	WriteFrac float64
	// HotFrac is the fraction of accesses that target the hot region
	// (uniformly at random within HotBytes); the rest target the cold
	// region under Pattern.
	HotFrac  float64
	HotBytes uint64
	// ColdBytes is the cold-region footprint the pattern walks through.
	ColdBytes uint64
	Pattern   PatternKind
	// Stride is the byte stride for the Strided pattern (≥ LineBytes).
	Stride uint64
	// BurstLen, when nonzero, alternates bursts of BurstLen accesses at
	// full intensity with quiet spans of BurstLen accesses whose
	// instruction gaps are stretched by IdleMul.
	BurstLen uint64
	// IdleMul stretches gaps in quiet spans (≥1; 0 means no bursts).
	IdleMul float64
}

// Spec is a complete benchmark description.
type Spec struct {
	Name string
	// Phases cycle in order; a single-phase spec is steady-state.
	Phases []Phase
}

// TotalCycleInsts returns the instruction length of one pass through the
// phase schedule.
func (s Spec) TotalCycleInsts() uint64 {
	var t uint64
	for _, p := range s.Phases {
		t += p.Insts
	}
	return t
}

// Generator produces the access stream for a Spec. It is not safe for
// concurrent use.
type Generator struct {
	spec Spec
	rnd  *rng.Rand

	phaseIdx   int
	phaseInsts uint64 // instructions consumed within the current phase
	coldCursor uint64
	burstPos   uint64
	// addrBase offsets the whole address space (distinct per core in
	// multi-program runs).
	addrBase uint64

	// gapForPhase/meanGap memoize the phase's mean instruction gap
	// (1000/MPKI, floored at 1) so the hot generation loop pays the division
	// once per phase instead of once per access. Derived state: recomputed
	// on demand, deliberately absent from GeneratorState (a rebuilt
	// generator re-derives it on its first access).
	gapForPhase int
	meanGap     float64
}

// NewGenerator returns a deterministic generator for spec drawing from the
// injected clonable stream r (construct it with rng.NewRand so the trace is
// a pure function of the experiment seed and the generator stays
// snapshotable).
func NewGenerator(spec Spec, r *rng.Rand) *Generator {
	if len(spec.Phases) == 0 {
		panic("trace: spec has no phases")
	}
	if r == nil {
		panic("trace: nil rng; inject a seeded *rng.Rand (rng.NewRand)")
	}
	return &Generator{spec: spec, rnd: r, gapForPhase: -1}
}

// NewGeneratorAt is NewGenerator with the address space offset by base
// (used to give each core of a multi-program workload a private footprint).
func NewGeneratorAt(spec Spec, r *rng.Rand, base uint64) *Generator {
	g := NewGenerator(spec, r)
	g.addrBase = base
	return g
}

// Spec returns the generator's benchmark spec.
func (g *Generator) Spec() Spec { return g.spec }

// Clone returns an independent deep copy of the generator: both continue
// the identical access stream from the current position, and advancing one
// never perturbs the other. The Spec is shared (it is read-only by
// contract).
func (g *Generator) Clone() *Generator {
	n := *g
	n.rnd = g.rnd.Clone()
	return &n
}

// GeneratorState is the complete serializable state of a Generator, used by
// machine checkpoints. The Spec rides along so a generator can be rebuilt
// without consulting the benchmark registry (custom specs included).
type GeneratorState struct {
	Spec       Spec
	RNG        uint64
	PhaseIdx   int
	PhaseInsts uint64
	ColdCursor uint64
	BurstPos   uint64
	AddrBase   uint64
}

// Snapshot captures the generator's complete state.
//
//mctlint:ignore clonefields gapForPhase/meanGap are a derived memo recomputed by Next on first use (FromState builds with gapForPhase=-1)
func (g *Generator) Snapshot() GeneratorState {
	return GeneratorState{
		Spec:       g.spec,
		RNG:        g.rnd.State(),
		PhaseIdx:   g.phaseIdx,
		PhaseInsts: g.phaseInsts,
		ColdCursor: g.coldCursor,
		BurstPos:   g.burstPos,
		AddrBase:   g.addrBase,
	}
}

// FromState rebuilds a generator from a state captured with Snapshot; the
// rebuilt generator continues the identical stream.
func FromState(st GeneratorState) *Generator {
	g := NewGeneratorAt(st.Spec, rng.NewRand(0), st.AddrBase)
	g.rnd.SetState(st.RNG)
	g.phaseIdx = st.PhaseIdx
	g.phaseInsts = st.PhaseInsts
	g.coldCursor = st.ColdCursor
	g.burstPos = st.BurstPos
	return g
}

const (
	hotRegionBase  = 0x1000_0000
	coldRegionBase = 0x8000_0000
)

// Next produces the next access in the stream. Callers that consume whole
// batches should prefer Fill, which amortizes the call overhead; the two
// produce the identical stream (Fill is a loop over the same core).
//
//mctlint:hotpath
func (g *Generator) Next() Access {
	ph := &g.spec.Phases[g.phaseIdx]

	// Mean instructions per access in this phase (memoized per phase).
	if g.gapForPhase != g.phaseIdx {
		mg := 1000.0 / ph.MPKI
		if mg < 1 {
			mg = 1
		}
		g.meanGap = mg
		g.gapForPhase = g.phaseIdx
	}
	meanGap := g.meanGap
	// Burst shaping: quiet spans stretch the gap.
	gapMul := 1.0
	if ph.BurstLen > 0 && ph.IdleMul > 1 {
		if (g.burstPos/ph.BurstLen)%2 == 1 {
			gapMul = ph.IdleMul
		}
		g.burstPos++
	}
	// Geometric-ish gap: exponential with the phase mean, floored at 1.
	gap := g.rnd.ExpFloat64() * meanGap * gapMul
	if gap < 1 {
		gap = 1
	}
	if gap > 1e6 {
		gap = 1e6
	}
	instGap := uint32(gap)

	var addr uint64
	if ph.HotFrac > 0 && g.rnd.Float64() < ph.HotFrac {
		hot := ph.HotBytes
		if hot < LineBytes {
			hot = LineBytes
		}
		addr = hotRegionBase + uint64(g.rnd.Int63n(int64(hot/LineBytes)))*LineBytes //mctlint:ignore cyclecast region bytes / LineBytes ≤ 2^58, and Int63n is non-negative; both conversions are lossless
	} else {
		cold := ph.ColdBytes
		if cold < LineBytes {
			cold = LineBytes
		}
		switch ph.Pattern {
		case Sequential:
			addr = coldRegionBase + g.coldCursor%cold
			g.coldCursor += LineBytes
		case Strided:
			stride := ph.Stride
			if stride < LineBytes {
				stride = LineBytes
			}
			addr = coldRegionBase + g.coldCursor%cold
			g.coldCursor += stride
		case Random:
			addr = coldRegionBase + uint64(g.rnd.Int63n(int64(cold/LineBytes)))*LineBytes //mctlint:ignore cyclecast region bytes / LineBytes ≤ 2^58, and Int63n is non-negative; both conversions are lossless
		}
	}

	write := g.rnd.Float64() < ph.WriteFrac

	// Advance the phase schedule.
	g.phaseInsts += uint64(instGap)
	if g.phaseInsts >= ph.Insts {
		g.phaseInsts = 0
		g.phaseIdx = (g.phaseIdx + 1) % len(g.spec.Phases)
		g.burstPos = 0
	}

	return Access{InstGap: instGap, Addr: g.addrBase + addr&^uint64(LineBytes-1), Write: write}
}

// Fill implements Source: it writes the next len(dst) accesses of the
// stream into dst and returns len(dst) (a generator never exhausts). The
// stream is exactly the one repeated Next calls produce, at any batch size —
// the batch-size-invariance contract the streaming simulator relies on.
// Hot-path root: the batched inner loop of streaming simulation.
//
//mctlint:hotpath
func (g *Generator) Fill(dst []Access) int {
	for i := range dst {
		dst[i] = g.Next()
	}
	return len(dst)
}

// Collect materializes the next n accesses of g into a slice. It is a thin
// wrapper over the streaming path (one Fill into a fresh slice); prefer
// Fill with a reusable buffer when the trace does not need to be held whole.
func Collect(g *Generator, n int) []Access {
	out := make([]Access, n)
	g.Fill(out)
	return out
}

// Materialize builds a trace of n accesses for the named benchmark drawing
// from the injected source. It returns an error for unknown benchmarks.
func Materialize(name string, n int, r *rng.Rand) ([]Access, error) {
	spec, err := ByName(name)
	if err != nil {
		return nil, err
	}
	return Collect(NewGenerator(spec, r), n), nil
}

// Names returns the registered benchmark names in sorted order.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ByName returns the Spec for a registered benchmark.
func ByName(name string) (Spec, error) {
	s, ok := registry[name]
	if !ok {
		return Spec{}, fmt.Errorf("trace: unknown benchmark %q (have %v)", name, Names())
	}
	return s, nil
}

// MixNames returns the names of the multi-program mixes of Table 11.
func MixNames() []string {
	names := make([]string, 0, len(mixes))
	for n := range mixes {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// MixByName returns the four benchmark specs of a Table 11 mix.
func MixByName(name string) ([]Spec, error) {
	members, ok := mixes[name]
	if !ok {
		return nil, fmt.Errorf("trace: unknown mix %q (have %v)", name, MixNames())
	}
	specs := make([]Spec, len(members))
	for i, m := range members {
		s, err := ByName(m)
		if err != nil {
			return nil, err
		}
		specs[i] = s
	}
	return specs, nil
}
