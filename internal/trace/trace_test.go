package trace

import (
	"testing"
	"testing/quick"

	"mct/internal/rng"
)

func TestRegistryNames(t *testing.T) {
	names := Names()
	if len(names) != 10 {
		t.Fatalf("expected 10 benchmarks, got %d: %v", len(names), names)
	}
	for _, want := range []string{"lbm", "leslie3d", "zeusmp", "GemsFDTD", "milc", "bwaves", "libquantum", "ocean", "gups", "stream"} {
		if _, err := ByName(want); err != nil {
			t.Errorf("missing benchmark %s: %v", want, err)
		}
	}
	// Sorted.
	for i := 1; i < len(names); i++ {
		if names[i] <= names[i-1] {
			t.Fatal("Names() not sorted")
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown benchmark must error")
	}
}

func TestMixes(t *testing.T) {
	if len(MixNames()) != 6 {
		t.Fatalf("expected 6 mixes, got %v", MixNames())
	}
	specs, err := MixByName("mix1")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 4 {
		t.Fatalf("mix1 has %d members, want 4", len(specs))
	}
	if _, err := MixByName("mix99"); err == nil {
		t.Fatal("unknown mix must error")
	}
}

func TestDeterminism(t *testing.T) {
	spec, _ := ByName("lbm")
	a := Collect(NewGenerator(spec, rng.NewRand(7)), 5000)
	b := Collect(NewGenerator(spec, rng.NewRand(7)), 5000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := Collect(NewGenerator(spec, rng.NewRand(8)), 5000)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds must produce different traces")
	}
}

// Property: every access is line-aligned with a positive instruction gap.
func TestAccessInvariants(t *testing.T) {
	f := func(seed int64) bool {
		spec, _ := ByName("milc")
		g := NewGenerator(spec, rng.NewRand(seed))
		for i := 0; i < 2000; i++ {
			a := g.Next()
			if a.InstGap < 1 || a.Addr%LineBytes != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestIntensityMatchesSpec(t *testing.T) {
	// Effective MPKI must land in a sane band around the spec (burst
	// shaping lowers it; it must never exceed the spec's nominal rate by
	// much).
	for _, name := range Names() {
		spec, _ := ByName(name)
		tr := Collect(NewGenerator(spec, rng.NewRand(1)), 100_000)
		var insts uint64
		var writes int
		for _, a := range tr {
			insts += uint64(a.InstGap)
			if a.Write {
				writes++
			}
		}
		mpki := float64(len(tr)) / float64(insts) * 1000
		nominal := spec.Phases[0].MPKI
		if mpki > nominal*1.3 {
			t.Errorf("%s: effective MPKI %.1f exceeds nominal %.1f", name, mpki, nominal)
		}
		if mpki < nominal*0.1 {
			t.Errorf("%s: effective MPKI %.1f far below nominal %.1f", name, mpki, nominal)
		}
		wf := float64(writes) / float64(len(tr))
		if wf < 0.05 || wf > 0.8 {
			t.Errorf("%s: write fraction %.2f out of band", name, wf)
		}
	}
}

func TestWriteFractionDiversity(t *testing.T) {
	// The learning problem depends on cross-application diversity: the
	// extreme write fractions must differ by at least 2x.
	lo, hi := 1.0, 0.0
	for _, name := range Names() {
		spec, _ := ByName(name)
		tr := Collect(NewGenerator(spec, rng.NewRand(1)), 50_000)
		writes := 0
		for _, a := range tr {
			if a.Write {
				writes++
			}
		}
		wf := float64(writes) / float64(len(tr))
		if wf < lo {
			lo = wf
		}
		if wf > hi {
			hi = wf
		}
	}
	if hi < 2*lo {
		t.Fatalf("write fractions not diverse: lo=%.2f hi=%.2f", lo, hi)
	}
}

func TestOceanHasPhases(t *testing.T) {
	spec, _ := ByName("ocean")
	if len(spec.Phases) < 2 {
		t.Fatal("ocean must be multi-phase")
	}
	if spec.TotalCycleInsts() == 0 {
		t.Fatal("zero cycle length")
	}
	// Windowed MPKI must vary substantially across the phase schedule.
	g := NewGenerator(spec, rng.NewRand(3))
	var mpkis []float64
	for w := 0; w < 16; w++ {
		var insts uint64
		n := 0
		for insts < 1_500_000 {
			a := g.Next()
			insts += uint64(a.InstGap)
			n++
		}
		mpkis = append(mpkis, float64(n)/float64(insts)*1000)
	}
	lo, hi := mpkis[0], mpkis[0]
	for _, m := range mpkis {
		if m < lo {
			lo = m
		}
		if m > hi {
			hi = m
		}
	}
	if hi < 3*lo {
		t.Fatalf("ocean phase intensity does not vary: lo=%.2f hi=%.2f (%v)", lo, hi, mpkis)
	}
}

func TestAddressBaseSeparation(t *testing.T) {
	spec, _ := ByName("gups")
	a := NewGeneratorAt(spec, rng.NewRand(1), 0)
	b := NewGeneratorAt(spec, rng.NewRand(1), 1<<34)
	for i := 0; i < 1000; i++ {
		if a.Next().Addr>>34 == b.Next().Addr>>34 {
			t.Fatal("address bases must separate cores")
		}
	}
}

func TestPatternKinds(t *testing.T) {
	if Sequential.String() != "sequential" || Strided.String() != "strided" || Random.String() != "random" {
		t.Fatal("PatternKind strings wrong")
	}
	if PatternKind(9).String() == "" {
		t.Fatal("unknown pattern must still render")
	}
}

func TestSequentialWalksLines(t *testing.T) {
	spec := Spec{Name: "seq", Phases: []Phase{{
		Insts: 1 << 40, MPKI: 50, WriteFrac: 0, ColdBytes: 1 << 20, Pattern: Sequential,
	}}}
	g := NewGenerator(spec, rng.NewRand(1))
	prev := g.Next().Addr
	for i := 0; i < 100; i++ {
		a := g.Next()
		if a.Addr != prev+LineBytes && a.Addr != coldRegionBase {
			t.Fatalf("sequential pattern jumped: %#x after %#x", a.Addr, prev)
		}
		prev = a.Addr
	}
}

func TestMaterialize(t *testing.T) {
	tr, err := Materialize("stream", 100, rng.NewRand(1))
	if err != nil || len(tr) != 100 {
		t.Fatalf("Materialize: %v, %d accesses", err, len(tr))
	}
	if _, err := Materialize("nope", 10, rng.NewRand(1)); err == nil {
		t.Fatal("unknown benchmark must error")
	}
}

func TestNewGeneratorPanicsOnEmptySpec(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for empty spec")
		}
	}()
	NewGenerator(Spec{Name: "empty"}, rng.NewRand(1))
}

// TestGeneratorCloneEquivalence: a clone taken mid-stream continues the
// byte-identical access sequence the parent would have produced.
func TestGeneratorCloneEquivalence(t *testing.T) {
	for _, name := range Names() {
		spec, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		g := NewGenerator(spec, rng.NewRand(9))
		Collect(g, 2000) // advance into the stream (and across phases)
		c := g.Clone()
		want := Collect(g, 3000)
		got := Collect(c, 3000)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: access %d diverged: %+v vs %+v", name, i, got[i], want[i])
			}
		}
	}
}

// TestGeneratorCloneIsolation: advancing a clone never perturbs the parent.
func TestGeneratorCloneIsolation(t *testing.T) {
	spec, err := ByName("ocean")
	if err != nil {
		t.Fatal(err)
	}
	g := NewGenerator(spec, rng.NewRand(3))
	Collect(g, 500)
	ref := g.Clone() // frozen reference position
	c := g.Clone()
	Collect(c, 4000) // churn the clone
	want := Collect(ref, 1000)
	got := Collect(g, 1000)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("access %d of parent perturbed by clone activity: %+v vs %+v", i, got[i], want[i])
		}
	}
}

// TestGeneratorSnapshotRoundTrip: FromState(g.Snapshot()) continues the
// identical stream, including mid-phase and mid-burst positions.
func TestGeneratorSnapshotRoundTrip(t *testing.T) {
	spec, err := ByName("gups")
	if err != nil {
		t.Fatal(err)
	}
	g := NewGeneratorAt(spec, rng.NewRand(17), 1<<34)
	Collect(g, 1234)
	r := FromState(g.Snapshot())
	want := Collect(g, 2000)
	got := Collect(r, 2000)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("access %d diverged after snapshot round trip: %+v vs %+v", i, got[i], want[i])
		}
	}
}

// TestSnapshotAtArbitraryCutPoints: a generator snapshotted at ANY position
// in its stream — mid-burst, mid-phase, mid-cold-walk — and rebuilt via
// FromState continues the byte-identical stream. This is the property the
// streaming Prepared path rests on: it replays measurement streams from a
// GeneratorState cut wherever warmup happened to stop. The cut offsets are
// co-prime-ish with the burst lengths and phase schedules so cuts land at
// many distinct burst/phase positions across benchmarks.
func TestSnapshotAtArbitraryCutPoints(t *testing.T) {
	const lookahead = 500
	for _, name := range Names() {
		spec, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		g := NewGeneratorAt(spec, rng.NewRand(23), 1<<33)
		pos := 0
		for _, cut := range []int{0, 1, 3, 17, 101, 757, 2048, 4999, 9973, 30011} {
			// Advance to the cut point.
			for ; pos < cut; pos++ {
				g.Next()
			}
			st := g.Snapshot()
			r := FromState(st)
			// A second rebuild from the same state must also work (states
			// are values; rebuilding must not consume them).
			r2 := FromState(st)
			for i := 0; i < lookahead; i++ {
				want := g.Next()
				if got := r.Next(); got != want {
					t.Fatalf("%s: cut %d: rebuilt generator diverged at +%d: %+v vs %+v", name, cut, i, got, want)
				}
				if got := r2.Next(); got != want {
					t.Fatalf("%s: cut %d: second rebuild diverged at +%d", name, cut, i)
				}
			}
			pos += lookahead
		}
	}
}

// TestSnapshotCutMidBurst pins the mid-burst case explicitly: ocean's phase
// schedule includes bursty phases, and a cut inside a quiet span must
// preserve the burst position (gap stretching resumes where it left off).
func TestSnapshotCutMidBurst(t *testing.T) {
	spec, err := ByName("ocean")
	if err != nil {
		t.Fatal(err)
	}
	// Find a bursty phase to target.
	burst := uint64(0)
	for _, ph := range spec.Phases {
		if ph.BurstLen > 0 {
			burst = ph.BurstLen
			break
		}
	}
	if burst == 0 {
		t.Skip("ocean has no bursty phase")
	}
	g := NewGenerator(spec, rng.NewRand(41))
	for i := 0; i < 50_000; i++ {
		g.Next()
		// Cut whenever we are strictly inside a quiet span (odd burst block,
		// not at a boundary).
		if g.burstPos > 0 && (g.burstPos/burst)%2 == 1 && g.burstPos%burst == burst/2 {
			r := FromState(g.Snapshot())
			if r.burstPos != g.burstPos {
				t.Fatalf("burst position lost across snapshot: %d vs %d", r.burstPos, g.burstPos)
			}
			for j := 0; j < 200; j++ {
				want := g.Next()
				if got := r.Next(); got != want {
					t.Fatalf("mid-burst cut diverged at +%d", j)
				}
			}
			return
		}
	}
	t.Fatal("never observed a mid-quiet-span position in 50k accesses")
}
