// Package wearlevel implements Start-Gap wear leveling (Qureshi et al.,
// MICRO 2009), the scheme the paper assumes at bank granularity ("assume
// using effective wear-leveling scheme (e.g., Start-Gap) in bank
// granularity which can achieve 95% average lifetime", Table 9). The NVM
// model folds that assumption into a single efficiency constant; this
// package provides the actual algorithm so the 95% figure can be validated
// against the synthetic workloads (experiment "validate-wearlevel").
//
// Start-Gap adds one spare line (the gap) to a region of N lines and two
// registers. Every ψ writes the gap moves one slot (copying its neighbour),
// so logical lines slowly rotate through all physical slots and hot lines
// spread their wear. Address translation is pure register arithmetic:
//
//	PA = (LA + start) mod N ; if PA ≥ gap then PA+1
package wearlevel

// StartGap is one Start-Gap wear-leveling region (a bank, in the paper's
// assumption).
type StartGap struct {
	n     int // logical lines; physical lines = n+1
	psi   int // demand writes between gap movements
	gap   int // current gap position ∈ [0, n]
	start int

	sinceMove int
	wear      []uint64 // per-physical-line write counts (includes gap copies)
	moves     uint64
}

// New returns a Start-Gap leveler over n logical lines with gap-movement
// interval psi. It panics on non-positive arguments (programmer error).
func New(n, psi int) *StartGap {
	if n <= 0 || psi <= 0 {
		panic("wearlevel: non-positive region size or interval")
	}
	return &StartGap{n: n, psi: psi, gap: n, wear: make([]uint64, n+1)}
}

// Lines returns the logical region size.
func (s *StartGap) Lines() int { return s.n }

// GapMoves returns how many gap movements (overhead writes) occurred.
func (s *StartGap) GapMoves() uint64 { return s.moves }

// Map translates a logical line to its current physical line.
func (s *StartGap) Map(logical int) int {
	if logical < 0 || logical >= s.n {
		panic("wearlevel: logical line out of range")
	}
	pa := (logical + s.start) % s.n
	if pa >= s.gap {
		pa++
	}
	return pa
}

// OnWrite records a demand write to a logical line and advances the gap
// when the interval expires. It returns the physical line written and
// whether a gap movement (one extra write) happened.
func (s *StartGap) OnWrite(logical int) (physical int, moved bool) {
	physical = s.Map(logical)
	s.wear[physical]++
	s.sinceMove++
	if s.sinceMove >= s.psi {
		s.sinceMove = 0
		s.moveGap()
		moved = true
	}
	return physical, moved
}

// moveGap shifts the gap one slot toward 0, copying the neighbouring line
// into the gap (one overhead write). When the gap reaches slot 0 it wraps
// to the end and the start register advances — after n+1 full rotations
// every logical line has visited every physical slot.
func (s *StartGap) moveGap() {
	s.moves++
	if s.gap == 0 {
		s.gap = s.n
		s.start = (s.start + 1) % s.n
		// The wrap itself is bookkeeping; the copy happened on the way.
		return
	}
	// Copy line at gap-1 into the gap slot: that physical slot is written.
	s.wear[s.gap]++
	s.gap--
}

// Wear returns a copy of the per-physical-line write counts.
func (s *StartGap) Wear() []uint64 {
	return append([]uint64(nil), s.wear...)
}

// MaxWear returns the most-written physical line's count.
func (s *StartGap) MaxWear() uint64 {
	var m uint64
	for _, w := range s.wear {
		if w > m {
			m = w
		}
	}
	return m
}

// Efficiency returns achieved lifetime relative to perfect leveling:
// average wear divided by maximum wear. 1.0 means perfectly even wear; the
// paper assumes ≈0.95 for this scheme.
func (s *StartGap) Efficiency() float64 {
	max := s.MaxWear()
	if max == 0 {
		return 1
	}
	var sum uint64
	for _, w := range s.wear {
		sum += w
	}
	avg := float64(sum) / float64(len(s.wear))
	return avg / float64(max)
}

// UnleveledEfficiency computes avg/max for a raw write histogram — the
// lifetime a bank would achieve with no wear leveling at all (for
// comparison in the validation experiment).
func UnleveledEfficiency(hist []uint64) float64 {
	var max, sum uint64
	for _, w := range hist {
		if w > max {
			max = w
		}
		sum += w
	}
	if max == 0 {
		return 1
	}
	return float64(sum) / float64(len(hist)) / float64(max)
}
