package wearlevel

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(0, 10)
}

func TestMapBijective(t *testing.T) {
	s := New(16, 4)
	for step := 0; step < 200; step++ {
		seen := map[int]bool{}
		for la := 0; la < s.Lines(); la++ {
			pa := s.Map(la)
			if pa < 0 || pa > s.Lines() {
				t.Fatalf("PA %d out of range", pa)
			}
			if pa == s.gap {
				t.Fatalf("PA %d collides with gap %d", pa, s.gap)
			}
			if seen[pa] {
				t.Fatalf("mapping not injective at step %d", step)
			}
			seen[pa] = true
		}
		s.OnWrite(step % s.Lines())
	}
}

func TestMapPanicsOutOfRange(t *testing.T) {
	s := New(8, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Map(8)
}

func TestGapMovesEveryPsi(t *testing.T) {
	s := New(32, 5)
	moves := 0
	for i := 0; i < 50; i++ {
		if _, moved := s.OnWrite(0); moved {
			moves++
		}
	}
	if moves != 10 {
		t.Fatalf("gap moved %d times over 50 writes with ψ=5, want 10", moves)
	}
	if s.GapMoves() != 10 {
		t.Fatalf("GapMoves = %d", s.GapMoves())
	}
}

func TestHotLineGetsLeveled(t *testing.T) {
	// Worst case for an unleveled memory: every write hits one line.
	// Start-Gap must spread that wear across physical slots over full
	// rotations.
	n := 64
	s := New(n, 1) // most aggressive leveling
	writes := n * (n + 1) * 4
	for i := 0; i < writes; i++ {
		s.OnWrite(7)
	}
	eff := s.Efficiency()
	if eff < 0.4 {
		t.Fatalf("hot-line efficiency %v too low — leveling not working", eff)
	}
	// Without leveling the efficiency would be ~1/(n+1).
	raw := make([]uint64, n+1)
	raw[7] = uint64(writes)
	if un := UnleveledEfficiency(raw); eff < 10*un {
		t.Fatalf("leveling gain too small: %v vs unleveled %v", eff, un)
	}
}

func TestUniformStreamNearPerfect(t *testing.T) {
	n := 128
	s := New(n, 100)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200_000; i++ {
		s.OnWrite(rng.Intn(n))
	}
	if eff := s.Efficiency(); eff < 0.85 {
		t.Fatalf("uniform-stream efficiency %v, want ≥0.85", eff)
	}
}

func TestUnleveledEfficiency(t *testing.T) {
	if UnleveledEfficiency([]uint64{4, 4, 4, 4}) != 1 {
		t.Fatal("even wear must be 1")
	}
	if got := UnleveledEfficiency([]uint64{8, 0, 0, 0}); got != 0.25 {
		t.Fatalf("single hot line = %v, want 0.25", got)
	}
	if UnleveledEfficiency([]uint64{0, 0}) != 1 {
		t.Fatal("no wear must be 1")
	}
}

// Property: wear accounting is conserved — total recorded wear equals
// demand writes plus gap-copy writes.
func TestWearConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(64)
		psi := 1 + rng.Intn(16)
		s := New(n, psi)
		demand := 500 + rng.Intn(2000)
		copies := uint64(0)
		for i := 0; i < demand; i++ {
			if _, moved := s.OnWrite(rng.Intn(n)); moved && s.gap != n {
				// A wrap (gap==n after move) performs no copy.
				copies++
			}
		}
		var total uint64
		for _, w := range s.Wear() {
			total += w
		}
		return total == uint64(demand)+copies
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
