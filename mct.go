// Package mct is the public API of the Memory Cocktail Therapy library — a
// reproduction of Deng et al., "Memory Cocktail Therapy: A General
// Learning-Based Framework to Optimize Dynamic Tradeoffs in NVMs"
// (MICRO-50, 2017).
//
// The library bundles:
//
//   - a trace-driven NVM system simulator (synthetic workloads → LLC → a
//     16-bank ReRAM controller with the mellow-writes technique family:
//     write cancellation, bank-aware and eager mellow writes, wear quota);
//   - the Mellow-Writes configuration space (Tables 2–3);
//   - a from-scratch learning stack (lasso/quadratic regression, gradient
//     boosting, hierarchical Bayes);
//   - the MCT runtime: phase detection, cyclic fine-grained sampling,
//     baseline normalization, constrained optimization, wear-quota fixup
//     and health checking;
//   - drivers that regenerate every table and figure of the paper's
//     evaluation.
//
// Quick start:
//
//	ctx := context.Background()
//	machine, _ := mct.NewMachine(ctx, "lbm", mct.StaticBaseline())
//	rt, _ := mct.NewRuntime(ctx, machine, mct.DefaultObjective(8))
//	result, _ := rt.Run(15_000_000)
//	fmt.Println(result.Testing.IPC, result.Testing.LifetimeYears)
//
// Every entry point is context-first and takes functional options; one
// option set serves construction, evaluation and experiments:
//
//	reg := mct.NewRegistry()
//	machine, _ := mct.NewMachine(ctx, "lbm", cfg,
//	    mct.WithSimOptions(simOpt), mct.WithObserver(reg))
//	rt, _ := mct.NewRuntime(ctx, machine, obj, mct.WithObserver(reg))
//	_, _ = rt.Run(2_000_000)
//	os.Stdout.Write(reg.DumpJSON()) // sorted, byte-stable metrics dump
//
// All simulation is deterministic and dependency-free (stdlib only).
package mct

import (
	"context"
	"io"

	"mct/internal/config"
	"mct/internal/core"
	"mct/internal/engine"
	"mct/internal/experiments"
	"mct/internal/hierarchy"
	"mct/internal/sim"
	"mct/internal/trace"
)

// Core configuration-space types.
type (
	// Config is one point of the Mellow-Writes configuration space.
	Config = config.Config
	// Space is an enumerated, indexed configuration space.
	Space = config.Space
	// SpaceOptions controls space enumeration.
	SpaceOptions = config.SpaceOptions
)

// Simulator types.
type (
	// Machine is a single-core simulated system executing one workload.
	Machine = sim.Machine
	// MultiMachine is the 4-core shared-memory system of §6.2.5.
	MultiMachine = sim.MultiMachine
	// Metrics reports IPC, lifetime and energy for a run or window.
	Metrics = sim.Metrics
	// SimOptions configures the simulated system.
	SimOptions = sim.Options
	// WorkloadSpec describes a synthetic benchmark.
	WorkloadSpec = trace.Spec
	// TierConfig selects the memory-hierarchy composition (NVM-only or
	// hybrid DRAM–NVM) and its knobs; pass it via WithTiers.
	TierConfig = config.TierConfig
	// Tier is one level of the composed memory hierarchy; Machine.Tiers
	// exposes the live pipeline top-down.
	Tier = hierarchy.Tier
)

// MCT runtime types.
type (
	// Objective is a user-defined constrained-optimization goal (§3.2).
	Objective = core.Objective
	// Constraint bounds one metric within an Objective.
	Constraint = core.Constraint
	// Runtime drives MCT over a live machine.
	Runtime = core.Runtime
	// RuntimeOptions configures the MCT runtime.
	RuntimeOptions = core.Options
	// Result is a runtime execution outcome.
	Result = core.Result
	// Decision is one learning outcome (chosen configuration etc.).
	Decision = core.Decision
	// Metric indexes the tradeoff space (IPC, lifetime, energy).
	Metric = core.Metric
)

// Tradeoff-space metric indices.
const (
	MetricIPC      = core.MetricIPC
	MetricLifetime = core.MetricLifetime
	MetricEnergy   = core.MetricEnergy
)

// DefaultConfig returns the paper's "default" system configuration: fast
// 1× writes, no mellow-writes techniques.
func DefaultConfig() Config { return config.Default() }

// StaticBaseline returns the best static policy from prior work (the
// paper's comparison baseline).
func StaticBaseline() Config { return config.StaticBaseline() }

// EnumerateConfigs returns the full legal configuration space.
func EnumerateConfigs(opt SpaceOptions) []Config { return config.Enumerate(opt) }

// NewSpace enumerates and indexes the configuration space.
func NewSpace(opt SpaceOptions) *Space { return config.NewSpace(opt) }

// DefaultObjective returns the paper's objective for a minimum lifetime:
// minimize energy subject to lifetime ≥ years and IPC ≥ 0.95·max (§3.2).
func DefaultObjective(years float64) Objective { return core.Default(years) }

// Benchmarks lists the available synthetic workloads (the paper's ten).
func Benchmarks() []string { return trace.Names() }

// Mixes lists the multi-program workload names of Table 11.
func Mixes() []string { return trace.MixNames() }

// MixMembers returns the four benchmark names of a Table 11 mix.
func MixMembers(mix string) ([]string, error) {
	specs, err := trace.MixByName(mix)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return names, nil
}

// DefaultSimOptions returns the Table 8/9 system configuration.
func DefaultSimOptions() SimOptions { return sim.DefaultOptions() }

// HybridTiers returns the standard hybrid DRAM–NVM composition: the DRAM
// cache tier enabled at its default hot-page promotion threshold. Pass it
// via WithTiers; tune the threshold through the returned value.
func HybridTiers() TierConfig { return config.TierConfig{DRAMCache: true} }

// simOptions resolves the effective simulator options of one facade call:
// explicit options (or defaults) with the tier composition layered over.
func simOptions(c callOpts) SimOptions {
	opt := sim.DefaultOptions()
	if c.sim != nil {
		opt = *c.sim
	}
	if c.tiers != nil {
		opt.Tiers = *c.tiers
	}
	return opt
}

// DefaultRuntimeOptions returns MCT runtime options scaled to the
// simulator.
func DefaultRuntimeOptions() RuntimeOptions { return core.DefaultOptions() }

// NewMachine builds a simulated system running the named benchmark under
// cfg. Options: WithSimOptions (default DefaultSimOptions), WithObserver
// (cache/nvm metric families publish to the registry at window
// boundaries).
func NewMachine(ctx context.Context, benchmark string, cfg Config, opts ...Option) (*Machine, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	c := applyOpts(opts)
	spec, err := trace.ByName(benchmark)
	if err != nil {
		return nil, err
	}
	m, err := sim.NewMachine(spec, cfg, simOptions(c))
	if err != nil {
		return nil, err
	}
	if c.reg != nil {
		m.AttachObserver(c.reg)
	}
	return m, nil
}

// NewMixMachine builds the 4-core system running a Table 11 mix. Options:
// WithSimOptions overrides the per-core simulator options inside the
// default multi-core setup; WithObserver attaches a registry (shared LLC
// and controller, one cache/nvm family).
func NewMixMachine(ctx context.Context, mix string, cfg Config, opts ...Option) (*MultiMachine, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	c := applyOpts(opts)
	specs, err := trace.MixByName(mix)
	if err != nil {
		return nil, err
	}
	mo := sim.DefaultMultiOptions()
	if c.sim != nil {
		mo.Options = *c.sim
	}
	if c.tiers != nil {
		mo.Options.Tiers = *c.tiers
	}
	mm, err := sim.NewMultiMachine(specs, cfg, mo)
	if err != nil {
		return nil, err
	}
	if c.reg != nil {
		mm.AttachObserver(c.reg)
	}
	return mm, nil
}

// SaveCheckpoint writes a machine's complete state (trace position, PRNG
// stream, LLC contents, controller queues and wear, window bookkeeping) to
// path as a versioned checkpoint. The write is atomic: a crash never leaves
// a torn file.
func SaveCheckpoint(path string, m *Machine) error { return sim.SaveCheckpoint(path, m) }

// LoadCheckpoint rebuilds a machine from a checkpoint written by
// SaveCheckpoint; the machine continues the identical simulation. Loading
// rejects files that are not checkpoints or were written by an incompatible
// version.
func LoadCheckpoint(path string) (*Machine, error) { return sim.LoadCheckpoint(path) }

// CloneMachine returns an independent deep copy of a machine: both continue
// the identical simulation, and advancing one never perturbs the other.
func CloneMachine(m *Machine) *Machine { return m.Clone() }

// runtimeOptions resolves the effective core options of one facade call:
// explicit options (or defaults) with the shared observer surface merged
// in (WithObserver feeds the core metric family, WithTraceSink the
// decision-trace events).
func runtimeOptions(c callOpts) RuntimeOptions {
	opt := core.DefaultOptions()
	if c.runtime != nil {
		opt = *c.runtime
	}
	if c.reg != nil {
		opt.Obs = c.reg
	}
	if c.sink != nil {
		opt.Events = c.sink
	}
	return opt
}

// NewRuntime attaches an MCT runtime to a machine. Options:
// WithRuntimeOptions (default DefaultRuntimeOptions), WithObserver (the
// core metric family publishes to the registry; if the machine has no
// observer yet, the registry is attached to it too, so one registry covers
// both layers), WithTraceSink (decision-trace events).
func NewRuntime(ctx context.Context, m *Machine, obj Objective, opts ...Option) (*Runtime, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	c := applyOpts(opts)
	if c.reg != nil && m.Observer() == nil {
		m.AttachObserver(c.reg)
	}
	return core.New(m, obj, runtimeOptions(c))
}

// NewMultiRuntime attaches an MCT runtime to a multi-core machine. It
// accepts the same options as NewRuntime.
func NewMultiRuntime(ctx context.Context, m *MultiMachine, obj Objective, opts ...Option) (*Runtime, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	c := applyOpts(opts)
	if c.reg != nil && m.Observer() == nil {
		m.AttachObserver(c.reg)
	}
	return core.New(core.MultiSystem{MM: m}, obj, runtimeOptions(c))
}

// Evaluate measures one configuration on a benchmark trace of nAccesses
// LLC accesses. The LLC is warmed before measurement (a cold cache
// produces no writebacks and meaningless lifetimes); the trace is
// deterministic, so evaluations of different configurations are directly
// comparable. Options: WithSimOptions, WithTiers.
func Evaluate(ctx context.Context, benchmark string, nAccesses int, cfg Config, opts ...Option) (Metrics, error) {
	if err := ctx.Err(); err != nil {
		return Metrics{}, err
	}
	c := applyOpts(opts)
	p, err := sim.Prepare(benchmark, 0, nAccesses, simOptions(c))
	if err != nil {
		return Metrics{}, err
	}
	return p.Evaluate(cfg)
}

// EvaluateMany measures several configurations on the identical warmed
// workload (one warmup shared across evaluations — the cheap way to
// sweep). Configurations are evaluated concurrently (WithWorkers bounds
// the pool, default GOMAXPROCS); results are returned in input order and
// are identical to a serial evaluation. Options: WithSimOptions,
// WithTiers, WithWorkers, WithObserver (engine metric family).
func EvaluateMany(ctx context.Context, benchmark string, nAccesses int, cfgs []Config, opts ...Option) ([]Metrics, error) {
	c := applyOpts(opts)
	p, err := sim.Prepare(benchmark, 0, nAccesses, simOptions(c))
	if err != nil {
		return nil, err
	}
	return engine.Map(ctx, len(cfgs), engine.Options{Workers: c.workers, Obs: c.reg},
		func(ctx context.Context, i int) (Metrics, error) {
			return p.Evaluate(cfgs[i])
		})
}

// Experiment types.
type (
	// ExperimentOptions scales the experiment drivers.
	ExperimentOptions = experiments.Options
	// ExperimentReport is a rendered experiment artifact.
	ExperimentReport = experiments.Report
	// ExperimentRunParams tunes per-experiment knobs.
	ExperimentRunParams = experiments.RunParams
)

// TextProgress returns a sink that renders trace events as plain text
// lines on w — the same lines the drivers printed before events existed.
// Pass it via WithTraceSink.
func TextProgress(w io.Writer) TraceSink { return engine.TextAdapter(w) }

// Experiments lists the reproducible table/figure identifiers.
func Experiments() []string { return experiments.IDs() }

// RunExperiment regenerates one paper table/figure and returns the
// structured report. Options: WithExperimentOptions (default
// DefaultExperimentOptions), WithRunParams, WithWorkers, WithTraceSink
// (progress events), WithObserver (engine metric family + sweep counters),
// WithOutput (render the text report to a writer as well). Cancelling ctx
// aborts promptly with ctx.Err(); reports are byte-identical at any worker
// count.
func RunExperiment(ctx context.Context, id string, opts ...Option) (*ExperimentReport, error) {
	c := applyOpts(opts)
	opt := experiments.DefaultOptions()
	if c.exp != nil {
		opt = *c.exp
	}
	if c.tiers != nil {
		opt.Sim.Tiers = *c.tiers
	}
	rp := experiments.DefaultRunParams()
	if c.rp != nil {
		rp = *c.rp
	}
	if c.workersSet {
		opt.Workers = c.workers
	}
	if c.sink != nil {
		opt.Events = c.sink
	}
	if c.reg != nil {
		opt.Obs = c.reg
	}
	rep, err := experiments.Run(ctx, id, opt, rp)
	if err != nil {
		return nil, err
	}
	if c.out != nil {
		rep.Fprint(c.out)
	}
	return rep, nil
}

// DefaultExperimentOptions returns full-fidelity experiment settings.
func DefaultExperimentOptions() ExperimentOptions { return experiments.DefaultOptions() }

// QuickExperimentOptions returns reduced-fidelity settings (strided space,
// short traces) for fast iteration and tests.
func QuickExperimentOptions() ExperimentOptions { return experiments.QuickOptions() }

// DefaultExperimentRunParams returns the standard experiment scales.
func DefaultExperimentRunParams() ExperimentRunParams { return experiments.DefaultRunParams() }
