// Package mct is the public API of the Memory Cocktail Therapy library — a
// reproduction of Deng et al., "Memory Cocktail Therapy: A General
// Learning-Based Framework to Optimize Dynamic Tradeoffs in NVMs"
// (MICRO-50, 2017).
//
// The library bundles:
//
//   - a trace-driven NVM system simulator (synthetic workloads → LLC → a
//     16-bank ReRAM controller with the mellow-writes technique family:
//     write cancellation, bank-aware and eager mellow writes, wear quota);
//   - the Mellow-Writes configuration space (Tables 2–3);
//   - a from-scratch learning stack (lasso/quadratic regression, gradient
//     boosting, hierarchical Bayes);
//   - the MCT runtime: phase detection, cyclic fine-grained sampling,
//     baseline normalization, constrained optimization, wear-quota fixup
//     and health checking;
//   - drivers that regenerate every table and figure of the paper's
//     evaluation.
//
// Quick start:
//
//	machine, _ := mct.NewMachine("lbm", mct.StaticBaseline())
//	rt, _ := mct.NewRuntime(machine, mct.DefaultObjective(8))
//	result, _ := rt.Run(15_000_000)
//	fmt.Println(result.Testing.IPC, result.Testing.LifetimeYears)
//
// All simulation is deterministic and dependency-free (stdlib only).
package mct

import (
	"context"
	"io"

	"mct/internal/config"
	"mct/internal/core"
	"mct/internal/engine"
	"mct/internal/experiments"
	"mct/internal/sim"
	"mct/internal/trace"
)

// Core configuration-space types.
type (
	// Config is one point of the Mellow-Writes configuration space.
	Config = config.Config
	// Space is an enumerated, indexed configuration space.
	Space = config.Space
	// SpaceOptions controls space enumeration.
	SpaceOptions = config.SpaceOptions
)

// Simulator types.
type (
	// Machine is a single-core simulated system executing one workload.
	Machine = sim.Machine
	// MultiMachine is the 4-core shared-memory system of §6.2.5.
	MultiMachine = sim.MultiMachine
	// Metrics reports IPC, lifetime and energy for a run or window.
	Metrics = sim.Metrics
	// SimOptions configures the simulated system.
	SimOptions = sim.Options
	// WorkloadSpec describes a synthetic benchmark.
	WorkloadSpec = trace.Spec
)

// MCT runtime types.
type (
	// Objective is a user-defined constrained-optimization goal (§3.2).
	Objective = core.Objective
	// Constraint bounds one metric within an Objective.
	Constraint = core.Constraint
	// Runtime drives MCT over a live machine.
	Runtime = core.Runtime
	// RuntimeOptions configures the MCT runtime.
	RuntimeOptions = core.Options
	// Result is a runtime execution outcome.
	Result = core.Result
	// Decision is one learning outcome (chosen configuration etc.).
	Decision = core.Decision
	// Metric indexes the tradeoff space (IPC, lifetime, energy).
	Metric = core.Metric
)

// Tradeoff-space metric indices.
const (
	MetricIPC      = core.MetricIPC
	MetricLifetime = core.MetricLifetime
	MetricEnergy   = core.MetricEnergy
)

// DefaultConfig returns the paper's "default" system configuration: fast
// 1× writes, no mellow-writes techniques.
func DefaultConfig() Config { return config.Default() }

// StaticBaseline returns the best static policy from prior work (the
// paper's comparison baseline).
func StaticBaseline() Config { return config.StaticBaseline() }

// EnumerateConfigs returns the full legal configuration space.
func EnumerateConfigs(opt SpaceOptions) []Config { return config.Enumerate(opt) }

// NewSpace enumerates and indexes the configuration space.
func NewSpace(opt SpaceOptions) *Space { return config.NewSpace(opt) }

// DefaultObjective returns the paper's objective for a minimum lifetime:
// minimize energy subject to lifetime ≥ years and IPC ≥ 0.95·max (§3.2).
func DefaultObjective(years float64) Objective { return core.Default(years) }

// Benchmarks lists the available synthetic workloads (the paper's ten).
func Benchmarks() []string { return trace.Names() }

// Mixes lists the multi-program workload names of Table 11.
func Mixes() []string { return trace.MixNames() }

// MixMembers returns the four benchmark names of a Table 11 mix.
func MixMembers(mix string) ([]string, error) {
	specs, err := trace.MixByName(mix)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return names, nil
}

// DefaultSimOptions returns the Table 8/9 system configuration.
func DefaultSimOptions() SimOptions { return sim.DefaultOptions() }

// DefaultRuntimeOptions returns MCT runtime options scaled to the
// simulator.
func DefaultRuntimeOptions() RuntimeOptions { return core.DefaultOptions() }

// NewMachine builds a simulated system running the named benchmark under
// cfg with default options.
func NewMachine(benchmark string, cfg Config) (*Machine, error) {
	return NewMachineOpts(benchmark, cfg, sim.DefaultOptions())
}

// NewMachineOpts is NewMachine with explicit simulator options.
func NewMachineOpts(benchmark string, cfg Config, opt SimOptions) (*Machine, error) {
	spec, err := trace.ByName(benchmark)
	if err != nil {
		return nil, err
	}
	return sim.NewMachine(spec, cfg, opt)
}

// NewMixMachine builds the 4-core system running a Table 11 mix.
func NewMixMachine(mix string, cfg Config) (*MultiMachine, error) {
	specs, err := trace.MixByName(mix)
	if err != nil {
		return nil, err
	}
	return sim.NewMultiMachine(specs, cfg, sim.DefaultMultiOptions())
}

// SaveCheckpoint writes a machine's complete state (trace position, PRNG
// stream, LLC contents, controller queues and wear, window bookkeeping) to
// path as a versioned checkpoint. The write is atomic: a crash never leaves
// a torn file.
func SaveCheckpoint(path string, m *Machine) error { return sim.SaveCheckpoint(path, m) }

// LoadCheckpoint rebuilds a machine from a checkpoint written by
// SaveCheckpoint; the machine continues the identical simulation. Loading
// rejects files that are not checkpoints or were written by an incompatible
// version.
func LoadCheckpoint(path string) (*Machine, error) { return sim.LoadCheckpoint(path) }

// CloneMachine returns an independent deep copy of a machine: both continue
// the identical simulation, and advancing one never perturbs the other.
func CloneMachine(m *Machine) *Machine { return m.Clone() }

// NewRuntime attaches an MCT runtime to a machine with default options.
func NewRuntime(m *Machine, obj Objective) (*Runtime, error) {
	return core.New(m, obj, core.DefaultOptions())
}

// NewRuntimeOpts is NewRuntime with explicit options.
func NewRuntimeOpts(m *Machine, obj Objective, opt RuntimeOptions) (*Runtime, error) {
	return core.New(m, obj, opt)
}

// NewMultiRuntime attaches an MCT runtime to a multi-core machine.
func NewMultiRuntime(m *MultiMachine, obj Objective, opt RuntimeOptions) (*Runtime, error) {
	return core.New(core.MultiSystem{MM: m}, obj, opt)
}

// Evaluate measures one configuration on a benchmark trace of nAccesses
// LLC accesses. The LLC is warmed before measurement (a cold cache
// produces no writebacks and meaningless lifetimes); the trace is
// deterministic, so evaluations of different configurations are directly
// comparable.
func Evaluate(benchmark string, nAccesses int, cfg Config) (Metrics, error) {
	p, err := sim.Prepare(benchmark, 0, nAccesses, sim.DefaultOptions())
	if err != nil {
		return Metrics{}, err
	}
	return p.Evaluate(cfg)
}

// EvaluateMany measures several configurations on the identical warmed
// workload (one warmup shared across evaluations — the cheap way to sweep).
func EvaluateMany(benchmark string, nAccesses int, cfgs []Config) ([]Metrics, error) {
	return EvaluateManyContext(context.Background(), benchmark, nAccesses, cfgs)
}

// EvaluateManyContext is EvaluateMany with cancellation. Configurations are
// evaluated concurrently on up to runtime.GOMAXPROCS(0) workers; results
// are returned in input order and are identical to a serial evaluation.
func EvaluateManyContext(ctx context.Context, benchmark string, nAccesses int, cfgs []Config) ([]Metrics, error) {
	p, err := sim.Prepare(benchmark, 0, nAccesses, sim.DefaultOptions())
	if err != nil {
		return nil, err
	}
	return engine.Map(ctx, len(cfgs), engine.Options{},
		func(ctx context.Context, i int) (Metrics, error) {
			return p.Evaluate(cfgs[i])
		})
}

// Experiment types.
type (
	// ExperimentOptions scales the experiment drivers.
	ExperimentOptions = experiments.Options
	// ExperimentReport is a rendered experiment artifact.
	ExperimentReport = experiments.Report
	// ExperimentRunParams tunes per-experiment knobs.
	ExperimentRunParams = experiments.RunParams
	// ExperimentEvent is one structured progress notification.
	ExperimentEvent = engine.Event
	// ExperimentSink consumes progress events (must be safe for concurrent
	// use; parallel evaluations emit from many goroutines).
	ExperimentSink = engine.Sink
)

// TextProgress returns a sink that renders progress events as plain text
// lines on w — the same lines the drivers printed before events existed.
func TextProgress(w io.Writer) ExperimentSink { return engine.TextAdapter(w) }

// Experiments lists the reproducible table/figure identifiers.
func Experiments() []string { return experiments.IDs() }

// RunExperiment regenerates one paper table/figure and writes the report
// to w.
func RunExperiment(id string, w io.Writer, opt ExperimentOptions, rp ExperimentRunParams) error {
	return RunExperimentContext(context.Background(), id, w, opt, rp)
}

// RunExperimentContext is RunExperiment with cancellation: cancelling ctx
// aborts the experiment promptly with ctx.Err(). opt.Workers bounds the
// parallelism of sweeps and driver fan-out (0 = GOMAXPROCS); reports are
// byte-identical at any worker count.
func RunExperimentContext(ctx context.Context, id string, w io.Writer, opt ExperimentOptions, rp ExperimentRunParams) error {
	rep, err := experiments.Run(ctx, id, opt, rp)
	if err != nil {
		return err
	}
	rep.Fprint(w)
	return nil
}

// RunExperimentReport regenerates one paper table/figure and returns the
// structured report (for JSON output or programmatic use).
func RunExperimentReport(id string, opt ExperimentOptions, rp ExperimentRunParams) (*ExperimentReport, error) {
	return RunExperimentReportContext(context.Background(), id, opt, rp)
}

// RunExperimentReportContext is RunExperimentReport with cancellation.
func RunExperimentReportContext(ctx context.Context, id string, opt ExperimentOptions, rp ExperimentRunParams) (*ExperimentReport, error) {
	return experiments.Run(ctx, id, opt, rp)
}

// DefaultExperimentOptions returns full-fidelity experiment settings.
func DefaultExperimentOptions() ExperimentOptions { return experiments.DefaultOptions() }

// QuickExperimentOptions returns reduced-fidelity settings (strided space,
// short traces) for fast iteration and tests.
func QuickExperimentOptions() ExperimentOptions { return experiments.QuickOptions() }

// DefaultExperimentRunParams returns the standard experiment scales.
func DefaultExperimentRunParams() ExperimentRunParams { return experiments.DefaultRunParams() }
