package mct_test

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"mct"
)

func TestQuickstartFlow(t *testing.T) {
	ctx := context.Background()
	m, err := mct.NewMachine(ctx, "lbm", mct.StaticBaseline())
	if err != nil {
		t.Fatal(err)
	}
	ro := mct.DefaultRuntimeOptions()
	ro.SamplingTotalInsts = 900_000
	ro.SampleUnitInsts = 10_000
	ro.BaselineInsts = 100_000
	rt, err := mct.NewRuntime(ctx, m, mct.DefaultObjective(8), mct.WithRuntimeOptions(ro))
	if err != nil {
		t.Fatal(err)
	}
	res, err := rt.Run(3_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Testing.IPC <= 0 || res.Testing.Instructions == 0 {
		t.Fatalf("degenerate result: %+v", res.Testing)
	}
	d := res.Phases[len(res.Phases)-1].Decision
	if err := d.Chosen.Validate(); err != nil {
		t.Fatalf("chosen config invalid: %v", err)
	}
}

func TestFacadeInventory(t *testing.T) {
	if len(mct.Benchmarks()) != 10 {
		t.Fatalf("benchmarks: %v", mct.Benchmarks())
	}
	if len(mct.Mixes()) != 6 {
		t.Fatalf("mixes: %v", mct.Mixes())
	}
	if len(mct.Experiments()) < 10 {
		t.Fatalf("experiments: %v", mct.Experiments())
	}
	if got := len(mct.EnumerateConfigs(mct.SpaceOptions{})); got != 2030 {
		t.Fatalf("space size %d", got)
	}
	if mct.NewSpace(mct.SpaceOptions{IncludeWearQuota: true}).Len() != 4060 {
		t.Fatal("wear-quota space size wrong")
	}
}

func TestFacadeEvaluate(t *testing.T) {
	ctx := context.Background()
	m, err := mct.Evaluate(ctx, "zeusmp", 100_000, mct.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if m.IPC <= 0 {
		t.Fatalf("IPC = %v", m.IPC)
	}
	if _, err := mct.Evaluate(ctx, "nope", 100, mct.DefaultConfig()); err == nil {
		t.Fatal("unknown benchmark must error")
	}
}

func TestFacadeMixMachine(t *testing.T) {
	ctx := context.Background()
	mm, err := mct.NewMixMachine(ctx, "mix1", mct.StaticBaseline())
	if err != nil {
		t.Fatal(err)
	}
	ro := mct.DefaultRuntimeOptions()
	ro.SamplingTotalInsts = 400_000
	ro.SampleUnitInsts = 4_000
	ro.BaselineInsts = 50_000
	ro.WarmupAccesses = 100_000
	rt, err := mct.NewMultiRuntime(ctx, mm, mct.DefaultObjective(8), mct.WithRuntimeOptions(ro))
	if err != nil {
		t.Fatal(err)
	}
	res, err := rt.Run(1_200_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Overall.Instructions == 0 {
		t.Fatal("multi runtime ran nothing")
	}
}

func TestRunExperimentSpace(t *testing.T) {
	ctx := context.Background()
	var buf bytes.Buffer
	opt := mct.QuickExperimentOptions()
	if _, err := mct.RunExperiment(ctx, "space", mct.WithExperimentOptions(opt), mct.WithOutput(&buf)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "2030") {
		t.Fatalf("space report wrong:\n%s", buf.String())
	}
	if _, err := mct.RunExperiment(ctx, "nope", mct.WithExperimentOptions(opt)); err == nil {
		t.Fatal("unknown experiment must error")
	}
}
