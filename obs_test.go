package mct_test

import (
	"bytes"
	"context"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"

	"mct"
)

// TestMetricsDumpWorkerInvariance is the determinism headline of the
// observability layer: the stable dump of a parallel evaluation is
// byte-identical at one worker, four workers and GOMAXPROCS workers.
func TestMetricsDumpWorkerInvariance(t *testing.T) {
	ctx := context.Background()
	space := mct.NewSpace(mct.SpaceOptions{})
	var cfgs []mct.Config
	for i := 0; i < space.Len(); i += 200 {
		cfgs = append(cfgs, space.At(i))
	}

	dumpAt := func(workers int) ([]byte, []mct.Metrics) {
		reg := mct.NewRegistry()
		ms, err := mct.EvaluateMany(ctx, "lbm", 20_000, cfgs,
			mct.WithWorkers(workers), mct.WithObserver(reg))
		if err != nil {
			t.Fatal(err)
		}
		return reg.DumpJSON(), ms
	}

	d1, m1 := dumpAt(1)
	d4, m4 := dumpAt(4)
	dMax, _ := dumpAt(runtime.GOMAXPROCS(0))

	if !bytes.Equal(d1, d4) {
		t.Errorf("dump differs between 1 and 4 workers:\n-- workers=1\n%s\n-- workers=4\n%s", d1, d4)
	}
	if !bytes.Equal(d1, dMax) {
		t.Errorf("dump differs between 1 and GOMAXPROCS workers")
	}
	for i := range m1 {
		if !reflect.DeepEqual(m1[i], m4[i]) {
			t.Fatalf("metrics differ between worker counts at %d: %+v vs %+v", i, m1[i], m4[i])
		}
	}
	if !strings.Contains(string(d1), `"engine.tasks_completed"`) {
		t.Errorf("engine family missing from dump:\n%s", d1)
	}
	// The wall-clock instruments are volatile: visible in the full dump,
	// banned from the stable one.
	if strings.Contains(string(d1), "engine.task_seconds") {
		t.Errorf("volatile instrument leaked into the stable dump:\n%s", d1)
	}
}

// TestRuntimeMetricsFamilies runs the full MCT stack against one registry
// and checks every layer's family shows up in the dump.
func TestRuntimeMetricsFamilies(t *testing.T) {
	ctx := context.Background()
	reg := mct.NewRegistry()
	m, err := mct.NewMachine(ctx, "lbm", mct.StaticBaseline(), mct.WithObserver(reg))
	if err != nil {
		t.Fatal(err)
	}
	ro := mct.DefaultRuntimeOptions()
	ro.SamplingTotalInsts = 900_000
	ro.SampleUnitInsts = 10_000
	ro.BaselineInsts = 100_000
	rt, err := mct.NewRuntime(ctx, m, mct.DefaultObjective(8),
		mct.WithRuntimeOptions(ro), mct.WithObserver(reg))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(3_000_000); err != nil {
		t.Fatal(err)
	}
	m.SyncObserver()

	dump := string(reg.DumpJSON())
	for _, want := range []string{
		`"cache.hits"`, `"nvm.reads"`, `"core.phases"`, `"core.decisions"`,
		`"sim.windows"`,
	} {
		if !strings.Contains(dump, want) {
			t.Errorf("dump missing %s:\n%s", want, dump)
		}
	}
	if reg.Counter("core.phases").Value() == 0 {
		t.Error("runtime finished but core.phases is zero")
	}
	// Dumping is repeatable: two dumps of an idle registry are identical.
	if !bytes.Equal(reg.DumpJSON(), reg.DumpJSON()) {
		t.Error("dump is not stable across calls")
	}
}

// TestRuntimeTraceSink: WithTraceSink receives the runtime's decision
// trace (baseline, sampling, decision events) with the runtime scope.
func TestRuntimeTraceSink(t *testing.T) {
	ctx := context.Background()
	var (
		mu    sync.Mutex
		kinds = map[string]int{}
	)
	sink := func(e mct.TraceEvent) {
		mu.Lock()
		kinds[e.Kind]++
		mu.Unlock()
	}
	m, err := mct.NewMachine(ctx, "gups", mct.StaticBaseline())
	if err != nil {
		t.Fatal(err)
	}
	ro := mct.DefaultRuntimeOptions()
	ro.SamplingTotalInsts = 900_000
	ro.SampleUnitInsts = 10_000
	ro.BaselineInsts = 100_000
	rt, err := mct.NewRuntime(ctx, m, mct.DefaultObjective(8),
		mct.WithRuntimeOptions(ro), mct.WithTraceSink(sink))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(3_000_000); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"baseline", "sampling", "decision"} {
		if kinds[k] == 0 {
			t.Errorf("no %q trace events received (got %v)", k, kinds)
		}
	}
}

// TestFacadeContextCancellation: a cancelled context short-circuits every
// context-first entry point.
func TestFacadeContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := mct.NewMachine(ctx, "lbm", mct.StaticBaseline()); err == nil {
		t.Error("NewMachine ignored a cancelled context")
	}
	if _, err := mct.Evaluate(ctx, "lbm", 1_000, mct.DefaultConfig()); err == nil {
		t.Error("Evaluate ignored a cancelled context")
	}
	if _, err := mct.EvaluateMany(ctx, "lbm", 1_000, []mct.Config{mct.DefaultConfig()}); err == nil {
		t.Error("EvaluateMany ignored a cancelled context")
	}
}

// TestCheckpointCarriesRegistry: the public checkpoint surface round-trips
// an attached registry (the sim-level equality test lives with the sim
// package; this asserts the facade exposes it).
func TestCheckpointCarriesRegistry(t *testing.T) {
	ctx := context.Background()
	reg := mct.NewRegistry()
	m, err := mct.NewMachine(ctx, "milc", mct.StaticBaseline(), mct.WithObserver(reg))
	if err != nil {
		t.Fatal(err)
	}
	m.RunInstructions(300_000)
	path := t.TempDir() + "/m.ckpt"
	if err := mct.SaveCheckpoint(path, m); err != nil {
		t.Fatal(err)
	}
	b, err := mct.LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if b.Observer() == nil {
		t.Fatal("restored machine lost its registry")
	}
	if !bytes.Equal(reg.DumpJSON(), b.Observer().DumpJSON()) {
		t.Error("restored registry dump differs from the saved machine's")
	}
}
