package mct

import (
	"io"

	"mct/internal/obs"
)

// Observability types, re-exported from internal/obs.
type (
	// Registry is a deterministic set of named counters, gauges and
	// fixed-bucket histograms. One registry can serve a machine, its
	// runtime and the evaluation engine at once (pass it via
	// WithObserver); its sorted JSON dump is byte-identical at any worker
	// count.
	Registry = obs.Registry
	// TraceEvent is one observation on the trace stream: progress from
	// sweeps and experiments, decision traces from the runtime.
	TraceEvent = obs.Event
	// TraceSink consumes trace events (must be safe for concurrent use).
	TraceSink = obs.TraceSink
)

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry { return obs.NewRegistry() }

// callOpts is the merged option state of one facade call.
type callOpts struct {
	sim     *SimOptions
	tiers   *TierConfig
	runtime *RuntimeOptions
	exp     *ExperimentOptions
	rp      *ExperimentRunParams
	reg     *Registry
	sink    TraceSink
	out     io.Writer
	workers int
	// workersSet distinguishes WithWorkers(0) ("use GOMAXPROCS") from
	// "option absent".
	workersSet bool
}

// Option configures one facade call. Every entry point accepts any option;
// options that do not apply to a call are ignored, so one option slice can
// be reused across NewMachine, NewRuntime and RunExperiment.
type Option func(*callOpts)

// apply merges opts over defaults.
func applyOpts(opts []Option) callOpts {
	var c callOpts
	for _, o := range opts {
		if o != nil {
			o(&c)
		}
	}
	return c
}

// WithSimOptions sets explicit simulator options (default:
// DefaultSimOptions).
func WithSimOptions(o SimOptions) Option {
	return func(c *callOpts) { c.sim = &o }
}

// WithTiers sets the memory-hierarchy composition of the simulated
// system: TierConfig{DRAMCache: true} inserts the DRAM cache tier between
// the LLC and the NVM controller (see HybridTiers for the standard hybrid
// setup). It layers over WithSimOptions — the tier composition is applied
// to whatever simulator options the call resolved — so the same option
// slice drives NewMachine, Evaluate and RunExperiment onto the identical
// hierarchy.
func WithTiers(t TierConfig) Option {
	return func(c *callOpts) { c.tiers = &t }
}

// WithRuntimeOptions sets explicit MCT runtime options (default:
// DefaultRuntimeOptions).
func WithRuntimeOptions(o RuntimeOptions) Option {
	return func(c *callOpts) { c.runtime = &o }
}

// WithExperimentOptions sets explicit experiment driver options (default:
// DefaultExperimentOptions).
func WithExperimentOptions(o ExperimentOptions) Option {
	return func(c *callOpts) { c.exp = &o }
}

// WithRunParams sets per-experiment scale knobs (default:
// DefaultExperimentRunParams).
func WithRunParams(rp ExperimentRunParams) Option {
	return func(c *callOpts) { c.rp = &rp }
}

// WithObserver attaches a metrics registry to the call: machines publish
// the cache/nvm families, runtimes the core family, and evaluation
// fan-outs the engine family, all onto reg. Dump it with reg.DumpJSON().
func WithObserver(reg *Registry) Option {
	return func(c *callOpts) { c.reg = reg }
}

// WithTraceSink routes trace events — experiment/sweep progress and
// runtime decision traces — to sink. Use TextProgress(w) for plain text.
func WithTraceSink(sink TraceSink) Option {
	return func(c *callOpts) { c.sink = sink }
}

// WithOutput sets the writer RunExperiment renders its text report to (by
// default the report is only returned, not rendered).
func WithOutput(w io.Writer) Option {
	return func(c *callOpts) { c.out = w }
}

// WithWorkers bounds evaluation parallelism (0 = GOMAXPROCS). Results and
// stable metric dumps are byte-identical at any worker count.
func WithWorkers(n int) Option {
	return func(c *callOpts) { c.workers = n; c.workersSet = true }
}
