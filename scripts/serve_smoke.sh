#!/usr/bin/env bash
# serve_smoke.sh — end-to-end smoke test of the mctd job-server daemon.
#
# Proves the two serving-layer contracts the unit tests can't cover from
# inside one process:
#
#  1. CLI/daemon parity: a sweep job submitted over HTTP produces an artifact
#     byte-identical to `mct -job` on the same spec.
#  2. Crash resume: kill -9 on the daemon mid-evaluate-job, then a restart on
#     the same state directory, resumes from the last checkpoint and still
#     produces a byte-identical artifact (Resumes count >= 1 proves the
#     resumed path actually ran).
#
# Stdlib tooling only: JSON field extraction uses sed, polling uses curl.
set -euo pipefail

cd "$(dirname "$0")/.."

WORK=$(mktemp -d)
BIN="$WORK/bin"
STATE="$WORK/state"
mkdir -p "$BIN"

MCTD_PID=""
cleanup() {
    [ -n "$MCTD_PID" ] && kill "$MCTD_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

say() { echo "serve-smoke: $*"; }
die() { echo "serve-smoke: FAIL: $*" >&2; exit 1; }

# json_field DOC KEY -> the string/number value of a top-level "key": entry.
json_field() {
    echo "$1" | sed -n "s/.*\"$2\": *\"\{0,1\}\([^\",}]*\)\"\{0,1\}.*/\1/p" | head -1
}

say "building mct and mctd"
go build -o "$BIN/mct" ./cmd/mct
go build -o "$BIN/mctd" ./cmd/mctd

start_mctd() {
    rm -f "$STATE/mctd.addr" # a stale address file would short-circuit the readiness poll
    "$BIN/mctd" -addr 127.0.0.1:0 -state "$STATE" -checkpoint-insts 200000 "$@" \
        > "$WORK/mctd.log" 2>&1 &
    MCTD_PID=$!
    for _ in $(seq 1 50); do
        [ -s "$STATE/mctd.addr" ] && break
        kill -0 "$MCTD_PID" 2>/dev/null || { cat "$WORK/mctd.log" >&2; die "mctd died on startup"; }
        sleep 0.1
    done
    ADDR=$(head -1 "$STATE/mctd.addr")
    URL="http://$ADDR"
    curl -fsS "$URL/healthz" > /dev/null || die "healthz not responding"
}

# submit SPEC_FILE -> job ID
submit() {
    local resp
    resp=$(curl -fsS -X POST -H 'X-MCT-Client: smoke' --data-binary @"$1" "$URL/v1/jobs") \
        || die "submit $1 rejected"
    json_field "$resp" id
}

# wait_state ID WANT_STATE TRIES
wait_state() {
    local st
    for _ in $(seq 1 "$3"); do
        st=$(json_field "$(curl -fsS "$URL/v1/jobs/$1")" state)
        case "$st" in
            "$2") return 0 ;;
            failed) curl -fsS "$URL/v1/jobs/$1" >&2; die "job $1 failed" ;;
        esac
        sleep 0.2
    done
    die "job $1 stuck (last state: $st, want $2)"
}

# --- phase 1: CLI/daemon sweep parity --------------------------------------

cat > "$WORK/sweep.json" <<'EOF'
{
  "v": 1,
  "kind": "sweep",
  "benchmark": "lbm",
  "accesses": 2000,
  "stride": 100
}
EOF

say "starting mctd"
start_mctd
say "daemon at $URL"

say "submitting sweep job"
SWEEP_ID=$(submit "$WORK/sweep.json")
[ -n "$SWEEP_ID" ] || die "no job ID in submit response"
wait_state "$SWEEP_ID" done 300

curl -fsS "$URL/v1/jobs/$SWEEP_ID/artifact" > "$WORK/sweep-daemon.json"
say "running the same spec through mct -job"
"$BIN/mct" -job "$WORK/sweep.json" -job-out "$WORK/sweep-cli.json"
cmp "$WORK/sweep-daemon.json" "$WORK/sweep-cli.json" \
    || die "daemon sweep artifact differs from mct -job output"
say "sweep artifacts byte-identical"

# The SSE stream of a finished job must deliver its terminal frame.
EVENTS=$(curl -fsS --max-time 10 "$URL/v1/jobs/$SWEEP_ID/events")
echo "$EVENTS" | grep -q '"text":"done"' || die "SSE stream missing terminal done frame: $EVENTS"

curl -fsS "$URL/metrics" | grep -q 'server.jobs_completed' \
    || die "/metrics missing server.jobs_completed"
say "metrics and SSE verified"

# --- phase 2: kill -9 mid-job, restart, resume -----------------------------

cat > "$WORK/eval.json" <<'EOF'
{
  "v": 1,
  "kind": "evaluate",
  "benchmark": "stream",
  "insts": 4000000,
  "config": {
    "v": 1,
    "bank_aware": true,
    "bank_aware_threshold": 1,
    "eager_writebacks": true,
    "eager_threshold": 32,
    "wear_quota": true,
    "wear_quota_target": 8,
    "fast_latency": 1,
    "slow_latency": 3,
    "fast_cancellation": false,
    "slow_cancellation": true
  }
}
EOF

say "submitting evaluate job, then kill -9 once it has a checkpoint"
EVAL_ID=$(submit "$WORK/eval.json")
wait_state "$EVAL_ID" running 100
CKPT="$STATE/jobs/$EVAL_ID/machine.ckpt"
for _ in $(seq 1 300); do
    [ -s "$CKPT" ] && break
    sleep 0.1
done
[ -s "$CKPT" ] || die "no machine checkpoint appeared for $EVAL_ID"

kill -9 "$MCTD_PID"
wait "$MCTD_PID" 2>/dev/null || true
MCTD_PID=""
say "daemon killed with checkpoint on disk; restarting on the same state"

start_mctd
STATUS=$(curl -fsS "$URL/v1/jobs/$EVAL_ID")
RESUMES=$(json_field "$STATUS" resumes)
[ -n "$RESUMES" ] && [ "$RESUMES" -ge 1 ] \
    || die "restarted job does not record a resume: $STATUS"
say "job re-adopted (resumes=$RESUMES); waiting for completion"
wait_state "$EVAL_ID" done 600

curl -fsS "$URL/v1/jobs/$EVAL_ID/artifact" > "$WORK/eval-daemon.json"
say "running the same spec uninterrupted through mct -job"
"$BIN/mct" -job "$WORK/eval.json" -job-out "$WORK/eval-cli.json"
cmp "$WORK/eval-daemon.json" "$WORK/eval-cli.json" \
    || die "resumed artifact differs from uninterrupted mct -job output"
say "kill -9 resume artifact byte-identical to uninterrupted run"

say "PASS"
